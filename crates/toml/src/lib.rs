//! A minimal TOML subset parser for spec files, plus shared helpers for
//! the parsers built on top of it (did-you-mean hints, byte-size
//! suffixes).
//!
//! The build environment has no network registry, so the workspace is
//! std-only and spec files — sweep scenarios and workload definitions —
//! are parsed by this small hand-rolled reader instead of the
//! `toml`/`serde` crates. The supported subset is exactly what those
//! specs need:
//!
//! * top-level `key = value` pairs and `[table]` sections (one level),
//! * `[[table]]` arrays of tables (one level, e.g. repeated `[[layer]]`
//!   blocks in a workload definition),
//! * strings (`"..."`), integers, floats, booleans,
//! * homogeneous single- or multi-line arrays of those scalars,
//! * `#` comments and blank lines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// An array of scalars, or of tables (`[[section]]` blocks).
    Array(Vec<Value>),
    /// A `[section]` table of key/value pairs.
    Table(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A numeric payload widened to `f64` (ints coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// An integer payload (floats with zero fraction coerce).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The key/value map, if this is a table.
    pub fn as_table(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }
}

/// A parse failure with a 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Line the error was detected on (1-based).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TOML parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Tracks string context while scanning a line, honoring `\"` escapes so
/// an escaped quote never closes a string.
#[derive(Default)]
struct StrState {
    in_str: bool,
    escaped: bool,
}

impl StrState {
    /// Feeds one character and reports whether it sits inside a string
    /// literal (the delimiting quotes count as inside, so `#`, `,`, `[`
    /// and `]` are only structural strictly outside strings).
    fn feed(&mut self, c: char) -> bool {
        if self.in_str {
            if self.escaped {
                self.escaped = false;
            } else if c == '\\' {
                self.escaped = true;
            } else if c == '"' {
                self.in_str = false;
            }
            true
        } else {
            if c == '"' {
                self.in_str = true;
            }
            self.in_str
        }
    }
}

/// Strips a trailing `#` comment that is not inside a string literal.
fn strip_comment(line: &str) -> &str {
    let mut st = StrState::default();
    for (i, c) in line.char_indices() {
        if !st.feed(c) && c == '#' {
            return &line[..i];
        }
    }
    line
}

/// Parses one scalar token (string, bool, int, or float).
fn parse_scalar(tok: &str, line: usize) -> Result<Value, ParseError> {
    let tok = tok.trim();
    if let Some(body) = tok.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| err(line, format!("unterminated string: {tok}")))?;
        // Minimal escapes: \" \\ \n \t
        let mut out = String::with_capacity(body.len());
        let mut chars = body.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    other => return Err(err(line, format!("unsupported escape \\{other:?}"))),
                }
            } else {
                out.push(c);
            }
        }
        return Ok(Value::Str(out));
    }
    match tok {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        "" => return Err(err(line, "empty value")),
        _ => {}
    }
    if let Ok(i) = tok.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = tok.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    Err(err(line, format!("cannot parse value: {tok}")))
}

/// Splits an array body on top-level commas (strings may contain commas).
fn split_elements(body: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut st = StrState::default();
    for c in body.chars() {
        if !st.feed(c) && c == ',' {
            parts.push(cur.trim().to_string());
            cur = String::new();
        } else {
            cur.push(c);
        }
    }
    let last = cur.trim().to_string();
    if !last.is_empty() {
        parts.push(last);
    }
    parts
}

fn parse_value(raw: &str, line: usize) -> Result<Value, ParseError> {
    let raw = raw.trim();
    if let Some(body) = raw.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| err(line, "unterminated array"))?;
        let mut vals = Vec::new();
        for el in split_elements(body) {
            vals.push(parse_scalar(&el, line)?);
        }
        return Ok(Value::Array(vals));
    }
    parse_scalar(raw, line)
}

/// Where subsequent `key = value` lines land.
enum Section {
    /// Top level.
    Root,
    /// Inside `[name]`.
    Table(String),
    /// Inside the latest `[[name]]` block.
    ArrayEntry(String),
}

/// Parses a TOML document into a root table.
///
/// ```
/// let doc = ace_toml::parse(r#"
/// name = "demo"
/// sizes = [1, 2, 4]
/// [baseline]
/// engine = "ideal"
/// [[layer]]
/// fwd_flops = 1.0e9
/// [[layer]]
/// fwd_flops = 2.0e9
/// "#).unwrap();
/// assert_eq!(doc.get("name").and_then(|v| v.as_str()), Some("demo"));
/// assert_eq!(doc.get("sizes").and_then(|v| v.as_array()).unwrap().len(), 3);
/// assert!(doc.get("baseline").and_then(|v| v.as_table()).is_some());
/// assert_eq!(doc.get("layer").and_then(|v| v.as_array()).unwrap().len(), 2);
/// ```
pub fn parse(text: &str) -> Result<BTreeMap<String, Value>, ParseError> {
    let mut root: BTreeMap<String, Value> = BTreeMap::new();
    let mut section = Section::Root;
    // Multi-line array accumulation: (key, buffer, start line).
    let mut pending: Option<(String, String, usize)> = None;

    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }

        if let Some((key, mut buf, start)) = pending.take() {
            buf.push(' ');
            buf.push_str(line);
            if balanced(&buf) {
                let value = parse_value(&buf, start)?;
                insert(&mut root, &section, key, value, start)?;
            } else {
                pending = Some((key, buf, start));
            }
            continue;
        }

        if let Some(name) = line.strip_prefix("[[") {
            let name = name
                .strip_suffix("]]")
                .ok_or_else(|| err(lineno, "unterminated array-of-tables header"))?
                .trim();
            if name.is_empty() || name.contains('[') || name.contains(']') {
                return Err(err(lineno, "invalid array-of-tables header"));
            }
            match root
                .entry(name.to_string())
                .or_insert_with(|| Value::Array(Vec::new()))
            {
                Value::Array(entries) => {
                    if entries.iter().any(|e| e.as_table().is_none()) {
                        return Err(err(
                            lineno,
                            format!("[[{name}]] conflicts with a scalar array of the same name"),
                        ));
                    }
                    entries.push(Value::Table(BTreeMap::new()));
                }
                _ => {
                    return Err(err(
                        lineno,
                        format!("[[{name}]] conflicts with an earlier non-array '{name}'"),
                    ))
                }
            }
            section = Section::ArrayEntry(name.to_string());
            continue;
        }

        if let Some(name) = line.strip_prefix('[') {
            let name = name
                .strip_suffix(']')
                .ok_or_else(|| err(lineno, "unterminated section header"))?
                .trim();
            if name.is_empty() || name.contains('[') {
                return Err(err(lineno, "invalid section header"));
            }
            match root
                .entry(name.to_string())
                .or_insert_with(|| Value::Table(BTreeMap::new()))
            {
                Value::Table(_) => {}
                _ => {
                    return Err(err(
                        lineno,
                        format!("[{name}] conflicts with an earlier non-table '{name}'"),
                    ))
                }
            }
            section = Section::Table(name.to_string());
            continue;
        }

        let (key, value_src) = line
            .split_once('=')
            .ok_or_else(|| err(lineno, format!("expected key = value, got: {line}")))?;
        let key = key.trim().to_string();
        if key.is_empty() {
            return Err(err(lineno, "empty key"));
        }
        let value_src = value_src.trim();
        if value_src.starts_with('[') && !balanced(value_src) {
            pending = Some((key, value_src.to_string(), lineno));
            continue;
        }
        let value = parse_value(value_src, lineno)?;
        insert(&mut root, &section, key, value, lineno)?;
    }

    if let Some((key, _, start)) = pending {
        return Err(err(
            start,
            format!("unterminated multi-line array for key '{key}'"),
        ));
    }
    Ok(root)
}

/// Whether every `[` in `s` (outside strings) is closed.
fn balanced(s: &str) -> bool {
    let mut depth = 0i32;
    let mut st = StrState::default();
    for c in s.chars() {
        if st.feed(c) {
            continue;
        }
        match c {
            '[' => depth += 1,
            ']' => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn insert(
    root: &mut BTreeMap<String, Value>,
    section: &Section,
    key: String,
    value: Value,
    line: usize,
) -> Result<(), ParseError> {
    let table = match section {
        Section::Root => root,
        Section::Table(name) => match root.get_mut(name) {
            Some(Value::Table(t)) => t,
            _ => return Err(err(line, format!("section [{name}] vanished"))),
        },
        Section::ArrayEntry(name) => match root.get_mut(name) {
            Some(Value::Array(entries)) => match entries.last_mut() {
                Some(Value::Table(t)) => t,
                _ => return Err(err(line, format!("array section [[{name}]] vanished"))),
            },
            _ => return Err(err(line, format!("array section [[{name}]] vanished"))),
        },
    };
    if table.insert(key.clone(), value).is_some() {
        return Err(err(line, format!("duplicate key '{key}'")));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Shared spec-parsing helpers
// ---------------------------------------------------------------------

/// Levenshtein distance, for did-you-mean hints.
fn edit_distance(a: &str, b: &str) -> usize {
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.chars().enumerate() {
        let mut cur = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur.push((prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// A `; did you mean '...'?` suffix when `word` is within edit distance
/// 2 (case-insensitive) of a candidate; empty otherwise. Shared by every
/// parser that wants typo hints: topology spellings and system-config
/// names (via the `ace-net` re-export), workload and scenario keys.
pub fn did_you_mean(word: &str, candidates: &[&str]) -> String {
    let lower = word.to_ascii_lowercase();
    candidates
        .iter()
        .map(|c| (edit_distance(&lower, &c.to_ascii_lowercase()), *c))
        .filter(|&(d, c)| d <= 2.min(c.len().saturating_sub(1)))
        .min_by_key(|&(d, _)| d)
        .map(|(_, c)| format!("; did you mean '{c}'?"))
        .unwrap_or_default()
}

/// How a [`Spelling`] parse failed, before the shared error formatting
/// is applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpellingError {
    /// The leading keyword was not recognized at all. The shared
    /// formatter lists the expected spellings and attaches a
    /// did-you-mean hint against [`Spelling::keywords`].
    Unknown,
    /// The keyword was recognized but its arguments are malformed; the
    /// message is shown verbatim.
    Invalid(String),
}

impl SpellingError {
    /// Shorthand for [`SpellingError::Invalid`] from any displayable.
    pub fn invalid(msg: impl fmt::Display) -> SpellingError {
        SpellingError::Invalid(msg.to_string())
    }
}

/// A type with a closed textual spelling grammar — topology specs,
/// system configs, workload selectors, fault and contention specs, and
/// the other scenario-key vocabularies.
///
/// Implementors provide only the *recognition* logic
/// ([`parse_spelling`](Spelling::parse_spelling)); the error wording —
/// the `unknown <what> '<input>' (expected ...)` shape and the
/// [`did_you_mean`] typo hint — comes from the provided
/// [`from_spelling`](Spelling::from_spelling), so every parser in the
/// workspace reports failures identically.
pub trait Spelling: Sized {
    /// What the grammar names, for error messages (e.g. `"topology"`).
    const WHAT: &'static str;

    /// The recognizable leading keywords, for did-you-mean hints.
    fn keywords() -> &'static [&'static str];

    /// A human-readable summary of the accepted spellings, shown after
    /// `expected` in unknown-keyword errors.
    fn spellings() -> &'static str;

    /// Recognizes one spelling. Return [`SpellingError::Unknown`] when
    /// the keyword itself is foreign (the caller formats the hint), and
    /// [`SpellingError::Invalid`] with a complete message when the
    /// keyword matched but the arguments did not.
    fn parse_spelling(s: &str) -> Result<Self, SpellingError>;

    /// Parses with the unified error formatting. `FromStr`
    /// implementations delegate here.
    fn from_spelling(s: &str) -> Result<Self, String> {
        match Self::parse_spelling(s) {
            Ok(v) => Ok(v),
            Err(SpellingError::Invalid(msg)) => Err(msg),
            Err(SpellingError::Unknown) => Err(unknown_spelling::<Self>(s)),
        }
    }
}

/// The `unknown <what> '<input>' (expected ...)` message, with the
/// [`did_you_mean`] hint, that [`Spelling::from_spelling`] attaches to
/// [`SpellingError::Unknown`]. Exposed for parsers that take extra
/// parameters (e.g. a base path) and so cannot route every call through
/// `from_spelling` but still want identical error wording.
pub fn unknown_spelling<T: Spelling>(s: &str) -> String {
    let word = s.trim();
    let keyword = word.split([':', '@', '=']).next().unwrap_or(word).trim();
    format!(
        "unknown {} '{}' (expected {}){}",
        T::WHAT,
        word,
        T::spellings(),
        did_you_mean(keyword, T::keywords())
    )
}

/// Parses a byte count: a plain integer, or a string with a `KB`/`MB`/`GB`
/// binary-power suffix (e.g. `"64MB"`).
pub fn parse_bytes(v: &Value) -> Result<u64, String> {
    if let Some(i) = v.as_i64() {
        return u64::try_from(i).map_err(|_| format!("negative byte count {i}"));
    }
    let s = v
        .as_str()
        .ok_or_else(|| "expected an integer or a string like \"64MB\"".to_string())?
        .trim()
        .to_ascii_uppercase();
    let (digits, shift) = if let Some(d) = s.strip_suffix("GB") {
        (d, 30)
    } else if let Some(d) = s.strip_suffix("MB") {
        (d, 20)
    } else if let Some(d) = s.strip_suffix("KB") {
        (d, 10)
    } else if let Some(d) = s.strip_suffix('B') {
        (d, 0)
    } else {
        (s.as_str(), 0)
    };
    let n: u64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("cannot parse byte count '{s}'"))?;
    n.checked_shl(shift)
        .filter(|&b| b >> shift == n)
        .ok_or_else(|| format!("byte count '{s}' overflows"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_sections() {
        let doc = parse(
            r#"
            # a comment
            name = "fig05"   # trailing comment
            threads = 8
            scale = 1.5
            fast = true

            [baseline]
            engine = "ideal"
            "#,
        )
        .unwrap();
        assert_eq!(doc["name"].as_str(), Some("fig05"));
        assert_eq!(doc["threads"].as_i64(), Some(8));
        assert_eq!(doc["scale"].as_f64(), Some(1.5));
        assert_eq!(doc["fast"].as_bool(), Some(true));
        let base = doc["baseline"].as_table().unwrap();
        assert_eq!(base["engine"].as_str(), Some("ideal"));
    }

    #[test]
    fn arrays_single_and_multi_line() {
        let doc = parse("mem = [32, 64, 128]\nnames = [\n  \"a, b\",\n  \"c\",\n]\n").unwrap();
        let mem: Vec<i64> = doc["mem"]
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_i64().unwrap())
            .collect();
        assert_eq!(mem, vec![32, 64, 128]);
        let names: Vec<&str> = doc["names"]
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_str().unwrap())
            .collect();
        assert_eq!(names, vec!["a, b", "c"]);
    }

    #[test]
    fn string_escapes() {
        let doc = parse(r#"s = "a\"b\\c\nd""#).unwrap();
        assert_eq!(doc["s"].as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn escaped_quotes_do_not_confuse_structure() {
        // An escaped quote must not end the string: the `#`, `,`, `[`
        // and `]` that follow are all still inside it.
        let doc = parse(r##"s = "a\" # b""##).unwrap();
        assert_eq!(doc["s"].as_str(), Some("a\" # b"));
        let doc = parse(r#"a = ["x\",y", "z"]"#).unwrap();
        let items: Vec<&str> = doc["a"]
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_str().unwrap())
            .collect();
        assert_eq!(items, vec!["x\",y", "z"]);
        let doc = parse("b = [\n  \"w\\\"]\",\n]\n").unwrap();
        assert_eq!(doc["b"].as_array().unwrap()[0].as_str(), Some("w\"]"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("ok = 1\nbroken").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
        assert!(parse("x = [1, 2").is_err());
        assert!(parse("x = 1\nx = 2").is_err());
        assert!(parse("[unclosed").is_err());
        assert!(parse("x = @").is_err());
    }

    #[test]
    fn int_float_coercion() {
        let doc = parse("a = 2\nb = 2.0\nc = 2.5").unwrap();
        assert_eq!(doc["a"].as_f64(), Some(2.0));
        assert_eq!(doc["b"].as_i64(), Some(2));
        assert_eq!(doc["c"].as_i64(), None);
    }

    #[test]
    fn arrays_of_tables() {
        let doc = parse(
            r#"
            name = "model"
            [[layer]]
            name = "a"
            fwd_flops = 1.0e9
            [[layer]]
            name = "b"
            repeat = 4
            "#,
        )
        .unwrap();
        let layers = doc["layer"].as_array().unwrap();
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].as_table().unwrap()["name"].as_str(), Some("a"));
        assert_eq!(layers[1].as_table().unwrap()["repeat"].as_i64(), Some(4));
    }

    #[test]
    fn array_of_tables_conflicts_are_rejected() {
        assert!(parse("x = 1\n[[x]]\n").is_err());
        assert!(parse("x = [1, 2]\n[[x]]\n").is_err());
        assert!(parse("[x]\na = 1\n[[x]]\n").is_err());
        assert!(parse("[[x]]\na = 1\n[x]\n").is_err());
        assert!(parse("[[x]\n").is_err());
        assert!(parse("[[ ]]\n").is_err());
    }

    #[test]
    fn array_of_tables_duplicate_keys_rejected_per_entry() {
        assert!(parse("[[l]]\na = 1\na = 2\n").is_err());
        // Same key in *different* entries is fine.
        assert!(parse("[[l]]\na = 1\n[[l]]\na = 2\n").is_ok());
    }

    #[test]
    fn spelling_trait_formats_errors_uniformly() {
        #[derive(Debug, PartialEq)]
        enum Mode {
            Fast(u32),
            Slow,
        }
        impl Spelling for Mode {
            const WHAT: &'static str = "mode";
            fn keywords() -> &'static [&'static str] {
                &["fast", "slow"]
            }
            fn spellings() -> &'static str {
                "fast:N or slow"
            }
            fn parse_spelling(s: &str) -> Result<Mode, SpellingError> {
                let s = s.trim();
                if s == "slow" {
                    return Ok(Mode::Slow);
                }
                if let Some(arg) = s.strip_prefix("fast:") {
                    return arg
                        .parse()
                        .map(Mode::Fast)
                        .map_err(|_| SpellingError::invalid(format!("bad fast count '{arg}'")));
                }
                Err(SpellingError::Unknown)
            }
        }
        assert_eq!(Mode::from_spelling("slow"), Ok(Mode::Slow));
        assert_eq!(Mode::from_spelling("fast:3"), Ok(Mode::Fast(3)));
        let e = Mode::from_spelling("fsat:3").unwrap_err();
        assert!(
            e.starts_with("unknown mode 'fsat:3' (expected fast:N or slow)"),
            "{e}"
        );
        assert!(e.contains("did you mean 'fast'?"), "{e}");
        let e = Mode::from_spelling("fast:x").unwrap_err();
        assert_eq!(e, "bad fast count 'x'");
    }

    #[test]
    fn did_you_mean_hints() {
        assert_eq!(
            did_you_mean("swich", &["switch", "hier", "torus"]),
            "; did you mean 'switch'?"
        );
        assert_eq!(did_you_mean("zzz", &["switch", "hier"]), "");
    }

    #[test]
    fn payload_suffixes() {
        let b = |s: &str| parse_bytes(&Value::Str(s.into())).unwrap();
        assert_eq!(b("64MB"), 64 << 20);
        assert_eq!(b("8 KB"), 8 << 10);
        assert_eq!(b("1GB"), 1 << 30);
        assert_eq!(b("512B"), 512);
        assert_eq!(b("4096"), 4096);
        assert_eq!(parse_bytes(&Value::Int(1024)).unwrap(), 1024);
        assert!(parse_bytes(&Value::Str("64XB".into())).is_err());
    }
}
