//! The task-graph workload IR.
//!
//! A [`Program`] is an acyclic graph of compute kernels, collectives and
//! synchronization barriers with explicit precedence edges, plus a
//! deterministic *schedule* — a topological linearization that fixes the
//! order in which the single NPU compute timeline executes its tasks and
//! the order in which collectives are issued (the LIFO scheduling policy
//! of the collective executor makes issue order meaningful).
//!
//! Workloads no longer hard-code control flow in the simulator: the
//! training loop of the paper (forward passes blocking on the previous
//! iteration's weight-gradient all-reduces, backward passes emitting one
//! collective per layer, DLRM's blocking all-to-alls) is *lowered* onto
//! this IR by [`Program::lower`], one lowering rule per
//! [`Parallelism`] strategy, and the simulator executes any valid
//! program. The Fig. 12 DLRM optimization is a graph transform
//! ([`Program::optimize_embedding`]) instead of a special-cased branch.
//!
//! # Execution model
//!
//! The schedule is executed in order by a scheduler owning one compute
//! timeline and a collective executor:
//!
//! * a **compute** task first blocks on every *collective* among its
//!   dependencies (in dependency order — the stall is exposed
//!   communication), then advances the timeline by its kernel;
//! * a **collective** task is issued (non-blocking) at the current
//!   timeline instant;
//! * a **barrier** blocks on its collective dependencies without running
//!   any kernel.
//!
//! Dependencies between two timeline tasks (compute/barrier) are
//! serialization edges — already satisfied by schedule order, which
//! [`Program::validate`] enforces is topological.

use std::fmt;

use ace_collectives::CollectiveOp;
use ace_compute::KernelDesc;

use crate::workload::{Parallelism, PipeSchedule, Workload};

/// Identifies a task within its [`Program`]. Stable across graph
/// transforms (removing a task from the schedule does not renumber the
/// others).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(usize);

impl TaskId {
    /// The dense index of this task in [`Program::task`] space.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// What a task does when the scheduler reaches it.
#[derive(Debug, Clone)]
pub enum TaskKind {
    /// Advance the compute timeline by one kernel.
    Compute(KernelDesc),
    /// Issue a collective at the current timeline instant (non-blocking;
    /// completion is consumed by dependent compute/barrier tasks).
    Collective {
        /// The collective operation.
        op: CollectiveOp,
        /// Per-node payload in bytes.
        bytes: u64,
    },
    /// Block on the collective dependencies without running a kernel.
    Barrier,
}

/// Which training pass a task belongs to — drives the Fig. 9b
/// forward/backward ACE-utilization split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskPhase {
    /// Forward pass of its iteration.
    Forward,
    /// Back-propagation (and everything after it) of its iteration.
    Backward,
}

impl TaskPhase {
    /// Compact label for trace span names (`fwd` / `bwd`).
    pub fn short_name(self) -> &'static str {
        match self {
            TaskPhase::Forward => "fwd",
            TaskPhase::Backward => "bwd",
        }
    }
}

/// Structural tags graph transforms and analyses key on. Purely
/// descriptive: the scheduler never branches on a role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskRole {
    /// Forward kernel of layer `layer`.
    Forward {
        /// Layer index in forward order.
        layer: usize,
    },
    /// Input-gradient kernel of layer `layer`.
    InputGrad {
        /// Layer index in forward order.
        layer: usize,
    },
    /// Weight-gradient kernel of layer `layer`.
    WeightGrad {
        /// Layer index in forward order.
        layer: usize,
    },
    /// Back-propagation collective of layer `layer` (weight gradients
    /// under data parallelism, input-gradient exchange under model
    /// parallelism).
    GradCollective {
        /// Layer index in forward order.
        layer: usize,
    },
    /// Model parallelism: forward activation all-reduce of layer `layer`.
    FwdCollective {
        /// Layer index in forward order.
        layer: usize,
    },
    /// DLRM embedding lookup kernel.
    EmbeddingLookup,
    /// DLRM embedding update kernel.
    EmbeddingUpdate,
    /// DLRM forward all-to-all (pooled embedding vectors).
    EmbeddingFwdA2a,
    /// DLRM backward all-to-all (embedding gradients).
    EmbeddingBwdA2a,
    /// Synchronization barrier.
    Sync,
    /// User-authored task with no structural meaning.
    Custom,
}

impl TaskRole {
    /// Compact label for trace span names (layer indices are carried by
    /// the span's iteration/phase context, not the role label).
    pub fn short_name(self) -> &'static str {
        match self {
            TaskRole::Forward { .. } => "forward",
            TaskRole::InputGrad { .. } => "input-grad",
            TaskRole::WeightGrad { .. } => "weight-grad",
            TaskRole::GradCollective { .. } => "grad-coll",
            TaskRole::FwdCollective { .. } => "fwd-coll",
            TaskRole::EmbeddingLookup => "emb-lookup",
            TaskRole::EmbeddingUpdate => "emb-update",
            TaskRole::EmbeddingFwdA2a => "emb-fwd-a2a",
            TaskRole::EmbeddingBwdA2a => "emb-bwd-a2a",
            TaskRole::Sync => "sync",
            TaskRole::Custom => "custom",
        }
    }
}

/// One node of the task graph.
#[derive(Debug, Clone)]
pub struct Task {
    kind: TaskKind,
    deps: Vec<TaskId>,
    phase: TaskPhase,
    iter: u32,
    role: TaskRole,
    /// Compute timeline (pipeline stage) the task runs on. Single-NPU
    /// programs put everything on timeline 0; pipeline lowerings give
    /// each stage its own timeline, and cross-timeline dependencies
    /// become real waits (pipeline bubbles).
    timeline: u32,
}

impl Task {
    /// What the task does.
    pub fn kind(&self) -> &TaskKind {
        &self.kind
    }

    /// Precedence edges: tasks that must complete before this one
    /// starts. For a compute/barrier task, collective dependencies are
    /// blocked on in this order.
    pub fn deps(&self) -> &[TaskId] {
        &self.deps
    }

    /// Training pass of the task.
    pub fn phase(&self) -> TaskPhase {
        self.phase
    }

    /// Iteration the task belongs to.
    pub fn iter(&self) -> u32 {
        self.iter
    }

    /// Structural tag.
    pub fn role(&self) -> TaskRole {
        self.role
    }

    /// Whether the task occupies the compute timeline (compute or
    /// barrier, as opposed to a non-blocking collective issue).
    pub fn is_timeline(&self) -> bool {
        !matches!(self.kind, TaskKind::Collective { .. })
    }

    /// The compute timeline (pipeline stage) the task runs on. A
    /// collective's timeline is the stage that issues it.
    pub fn timeline(&self) -> usize {
        self.timeline as usize
    }
}

/// Resources permanently loaned away from training compute — the
/// Section VI-D background embedding pipeline carve-out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeCarveout {
    /// SMs loaned away (the paper loans 1).
    pub sms: u32,
    /// HBM bandwidth loaned away, GB/s (the paper loans 80).
    pub mem_gbps: f64,
}

impl ComputeCarveout {
    /// The Section VI-D carve-out: 1 SM and 80 GB/s for the background
    /// embedding pipeline.
    pub fn embedding_default() -> ComputeCarveout {
        ComputeCarveout {
            sms: 1,
            mem_gbps: 80.0,
        }
    }
}

/// Options for [`Program::lower`].
#[derive(Debug, Clone, Copy)]
pub struct LoweringOptions {
    /// Training iterations to unroll (the paper simulates 2).
    pub iterations: u32,
    /// Whether the endpoint configuration overlaps communication with
    /// compute. `false` (BaselineNoOverlap) batches every non-blocking
    /// collective at the end of back-propagation behind a barrier.
    pub overlap: bool,
}

impl Default for LoweringOptions {
    fn default() -> Self {
        LoweringOptions {
            iterations: 2,
            overlap: true,
        }
    }
}

/// A declarative training program: the task DAG plus its deterministic
/// schedule. See the [module docs](self) for the execution model.
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    parallelism: Parallelism,
    iterations: u32,
    /// All tasks ever created, indexed by `TaskId`. Tasks removed by a
    /// transform stay here (ids are stable) but leave the schedule.
    tasks: Vec<Task>,
    /// Execution order — a topological linearization of the dep DAG.
    schedule: Vec<TaskId>,
    carveout: Option<ComputeCarveout>,
    /// Number of compute timelines (1 + the highest timeline index any
    /// task was pushed on). Single-NPU programs have exactly one.
    timelines: u32,
}

impl Program {
    /// An empty program. `iterations` is descriptive metadata for
    /// reports; the actual work is whatever tasks are added.
    pub fn new(name: impl Into<String>, parallelism: Parallelism, iterations: u32) -> Program {
        Program {
            name: name.into(),
            parallelism,
            iterations: iterations.max(1),
            tasks: Vec::new(),
            schedule: Vec::new(),
            carveout: None,
            timelines: 1,
        }
    }

    /// Number of compute timelines (pipeline stages) in the program.
    pub fn timelines(&self) -> usize {
        self.timelines as usize
    }

    /// Program (workload) name, used in reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parallelization strategy the program was lowered under.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Iterations the program unrolls.
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// The resource carve-out applied to every compute kernel, if any.
    pub fn carveout(&self) -> Option<ComputeCarveout> {
        self.carveout
    }

    /// Sets the compute carve-out (see [`ComputeCarveout`]).
    pub fn set_carveout(&mut self, carveout: Option<ComputeCarveout>) {
        self.carveout = carveout;
    }

    /// Number of scheduled tasks.
    pub fn len(&self) -> usize {
        self.schedule.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }

    /// The execution order.
    pub fn schedule(&self) -> &[TaskId] {
        &self.schedule
    }

    /// The task behind `id`.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// Total number of task slots (scheduled or removed) — the exclusive
    /// upper bound of [`TaskId::index`].
    pub fn task_slots(&self) -> usize {
        self.tasks.len()
    }

    /// Scheduled tasks in execution order.
    pub fn iter_scheduled(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.schedule.iter().map(move |&id| (id, &self.tasks[id.0]))
    }

    // ------------------------------------------------------------------
    // Graph construction
    // ------------------------------------------------------------------

    /// Appends a compute task. The previous timeline task is added as an
    /// implicit serialization dependency (the NPU runs kernels serially);
    /// `waits` lists the collectives (or other tasks) it must block on,
    /// in blocking order.
    pub fn add_compute(
        &mut self,
        kernel: KernelDesc,
        phase: TaskPhase,
        iter: u32,
        waits: Vec<TaskId>,
    ) -> TaskId {
        self.push(
            TaskKind::Compute(kernel),
            phase,
            iter,
            TaskRole::Custom,
            waits,
            true,
        )
    }

    /// Appends a collective issued after `after` completes (pass the
    /// producing compute task; an empty list issues it as soon as the
    /// schedule reaches it).
    pub fn add_collective(
        &mut self,
        op: CollectiveOp,
        bytes: u64,
        phase: TaskPhase,
        iter: u32,
        after: Vec<TaskId>,
    ) -> TaskId {
        self.push(
            TaskKind::Collective { op, bytes },
            phase,
            iter,
            TaskRole::Custom,
            after,
            false,
        )
    }

    /// Appends a barrier blocking on `waits` (in order).
    pub fn add_barrier(&mut self, phase: TaskPhase, iter: u32, waits: Vec<TaskId>) -> TaskId {
        self.push(TaskKind::Barrier, phase, iter, TaskRole::Sync, waits, true)
    }

    /// Appends a compute task on an explicit timeline (pipeline stage).
    /// Chains after the previous timeline task *of that timeline*.
    pub fn add_compute_on(
        &mut self,
        timeline: usize,
        kernel: KernelDesc,
        phase: TaskPhase,
        iter: u32,
        waits: Vec<TaskId>,
    ) -> TaskId {
        self.push_on(
            timeline as u32,
            TaskKind::Compute(kernel),
            phase,
            iter,
            TaskRole::Custom,
            waits,
            true,
        )
    }

    /// Appends a collective issued by the given timeline after `after`
    /// completes.
    pub fn add_collective_on(
        &mut self,
        timeline: usize,
        op: CollectiveOp,
        bytes: u64,
        phase: TaskPhase,
        iter: u32,
        after: Vec<TaskId>,
    ) -> TaskId {
        self.push_on(
            timeline as u32,
            TaskKind::Collective { op, bytes },
            phase,
            iter,
            TaskRole::Custom,
            after,
            false,
        )
    }

    /// Core task append on timeline 0. `chain` adds the previous
    /// timeline task as a leading serialization dependency.
    fn push(
        &mut self,
        kind: TaskKind,
        phase: TaskPhase,
        iter: u32,
        role: TaskRole,
        deps: Vec<TaskId>,
        chain: bool,
    ) -> TaskId {
        self.push_on(0, kind, phase, iter, role, deps, chain)
    }

    /// Core task append. `chain` adds the previous timeline task *of the
    /// same timeline* as a leading serialization dependency (each
    /// pipeline stage runs its kernels serially; stages run concurrently).
    #[allow(clippy::too_many_arguments)]
    fn push_on(
        &mut self,
        timeline: u32,
        kind: TaskKind,
        phase: TaskPhase,
        iter: u32,
        role: TaskRole,
        mut deps: Vec<TaskId>,
        chain: bool,
    ) -> TaskId {
        if chain {
            if let Some(prev) = self.last_timeline_on(timeline) {
                if !deps.contains(&prev) {
                    deps.insert(0, prev);
                }
            }
        }
        let id = TaskId(self.tasks.len());
        self.tasks.push(Task {
            kind,
            deps,
            phase,
            iter,
            role,
            timeline,
        });
        self.schedule.push(id);
        self.timelines = self.timelines.max(timeline + 1);
        id
    }

    /// The most recently scheduled timeline (compute/barrier) task of
    /// the given timeline.
    fn last_timeline_on(&self, timeline: u32) -> Option<TaskId> {
        self.schedule
            .iter()
            .rev()
            .find(|&&id| {
                let t = &self.tasks[id.0];
                t.is_timeline() && t.timeline == timeline
            })
            .copied()
    }

    /// The most recently scheduled timeline (compute/barrier) task.
    fn last_timeline(&self) -> Option<TaskId> {
        self.last_timeline_on(0)
    }

    // ------------------------------------------------------------------
    // Validation
    // ------------------------------------------------------------------

    /// Checks that the program is executable: the schedule holds no
    /// duplicates, every dependency of a scheduled task is itself
    /// scheduled *earlier* (which makes the scheduled subgraph acyclic
    /// and the schedule a topological order), and collectives only
    /// depend on timeline tasks.
    pub fn validate(&self) -> Result<(), String> {
        let mut position = vec![usize::MAX; self.tasks.len()];
        for (pos, &id) in self.schedule.iter().enumerate() {
            if id.0 >= self.tasks.len() {
                return Err(format!("schedule references unknown task {id}"));
            }
            if position[id.0] != usize::MAX {
                return Err(format!("task {id} is scheduled twice"));
            }
            position[id.0] = pos;
        }
        for (pos, &id) in self.schedule.iter().enumerate() {
            let task = &self.tasks[id.0];
            for &dep in &task.deps {
                if dep.0 >= self.tasks.len() || position[dep.0] == usize::MAX {
                    return Err(format!(
                        "task {id} depends on {dep}, which is not scheduled"
                    ));
                }
                if position[dep.0] >= pos {
                    return Err(format!(
                        "task {id} depends on {dep}, which is scheduled at or after it \
                         (the schedule must be a topological order)"
                    ));
                }
                if matches!(task.kind, TaskKind::Collective { .. })
                    && !self.tasks[dep.0].is_timeline()
                {
                    return Err(format!(
                        "collective task {id} depends on collective {dep}; collectives may \
                         only be anchored to compute or barrier tasks"
                    ));
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Analyses
    // ------------------------------------------------------------------

    /// Per-node bytes of the layer gradient collectives scheduled for
    /// `iter` — for builtin lowerings under their native strategy this
    /// equals [`Workload::total_comm_bytes`].
    pub fn grad_collective_bytes(&self, iter: u32) -> u64 {
        self.iter_scheduled()
            .filter(|(_, t)| t.iter == iter && matches!(t.role, TaskRole::GradCollective { .. }))
            .map(|(_, t)| match t.kind {
                TaskKind::Collective { bytes, .. } => bytes,
                _ => 0,
            })
            .sum()
    }

    /// Per-node bytes of every scheduled collective (all iterations,
    /// embedding exchanges included).
    pub fn total_collective_bytes(&self) -> u64 {
        self.iter_scheduled()
            .map(|(_, t)| match t.kind {
                TaskKind::Collective { bytes, .. } => bytes,
                _ => 0,
            })
            .sum()
    }

    /// The first scheduled task of `iter` with role `role`.
    pub fn find_role(&self, iter: u32, role: TaskRole) -> Option<TaskId> {
        self.iter_scheduled()
            .find(|(_, t)| t.iter == iter && t.role == role)
            .map(|(id, _)| id)
    }

    // ------------------------------------------------------------------
    // Lowering
    // ------------------------------------------------------------------

    /// Compiles `(workload, parallelism, options)` into a task graph.
    ///
    /// Lowering rules (Section V training loop):
    ///
    /// * **Data parallelism** — per layer, back-propagation emits the
    ///   layer's weight-gradient collective right after its
    ///   weight-gradient kernel. Overlapping configurations let the next
    ///   iteration's forward pass block per layer on the previous
    ///   iteration's collective; `overlap = false` defers every
    ///   collective to a blocking batch behind a barrier at the end of
    ///   back-propagation.
    /// * **Hybrid parallelism** — data parallelism plus the embedding
    ///   pipeline: lookup kernel and forward all-to-all before the
    ///   layers, a blocking wait on that all-to-all before the top-MLP
    ///   layer *in every configuration* (Table VI footnote), and the
    ///   backward all-to-all + embedding update after back-propagation.
    /// * **Model parallelism** (Megatron-style tensor parallel, the
    ///   Section III motivation) — each layer's activation all-reduce
    ///   blocks the *next* forward layer, and each backward layer's
    ///   input-gradient all-reduce blocks the *previous* layer's
    ///   backward kernels. These exchanges sit on the critical path by
    ///   construction, in every configuration; there are no
    ///   weight-gradient collectives (weights are sharded).
    /// * **Pipeline parallelism** — contiguous layer groups become
    ///   stages, each on its own compute timeline; the mini-batch splits
    ///   into microbatches whose per-stage kernels scale by `1/M`;
    ///   stage boundaries exchange activations (forward) and gradients
    ///   (backward) via one-hop [`CollectiveOp::SendRecv`] transfers
    ///   sized from the boundary layer's comm bytes `/M`; the per-stage
    ///   task order follows the GPipe or 1F1B schedule. Overlap has no
    ///   effect (boundary transfers are blocking by nature).
    pub fn lower(workload: &Workload, parallelism: Parallelism, opts: &LoweringOptions) -> Program {
        if let Parallelism::Pipeline {
            stages,
            microbatches,
            schedule,
        } = parallelism
        {
            return Self::lower_pipeline(workload, stages, microbatches, schedule, opts);
        }
        let mut p = Program::new(workload.name(), parallelism, opts.iterations);
        let layers = workload.layers();
        let model = parallelism == Parallelism::Model;
        // Data/hybrid: the backward collectives the next iteration's
        // forward pass blocks on, per layer.
        let mut prev_ar: Vec<Option<TaskId>> = vec![None; layers.len()];

        for iter in 0..opts.iterations {
            // ---------------- forward pass ----------------
            let mut fwd_a2a = None;
            if let Some(emb) = workload.embedding() {
                let lookup = p.push(
                    TaskKind::Compute(emb.lookup.clone()),
                    TaskPhase::Forward,
                    iter,
                    TaskRole::EmbeddingLookup,
                    Vec::new(),
                    true,
                );
                fwd_a2a = Some(p.push(
                    TaskKind::Collective {
                        op: CollectiveOp::AllToAll,
                        bytes: emb.fwd_all_to_all_bytes,
                    },
                    TaskPhase::Forward,
                    iter,
                    TaskRole::EmbeddingFwdA2a,
                    vec![lookup],
                    false,
                ));
            }

            // Model parallelism: the activation all-reduce the next
            // forward layer blocks on.
            let mut fwd_ar: Option<TaskId> = None;
            for (i, layer) in layers.iter().enumerate() {
                let mut waits = Vec::new();
                if model {
                    if let Some(ar) = fwd_ar.take() {
                        waits.push(ar);
                    }
                } else if opts.overlap && iter > 0 {
                    if let Some(ar) = prev_ar[i].take() {
                        waits.push(ar);
                    }
                }
                if let Some(emb) = workload.embedding() {
                    if i == emb.top_mlp_start {
                        // "The only exception is DLRM fwd-pass all-to-all
                        // where the training loop performs a blocking
                        // wait" (Table VI footnote) — in every
                        // configuration.
                        if let Some(a2a) = fwd_a2a.take() {
                            waits.push(a2a);
                        }
                    }
                }
                let fwd = p.push(
                    TaskKind::Compute(layer.fwd().clone()),
                    TaskPhase::Forward,
                    iter,
                    TaskRole::Forward { layer: i },
                    waits,
                    true,
                );
                if model {
                    if let Some(c) = layer.comm() {
                        fwd_ar = Some(p.push(
                            TaskKind::Collective {
                                op: c.op,
                                bytes: c.bytes,
                            },
                            TaskPhase::Forward,
                            iter,
                            TaskRole::FwdCollective { layer: i },
                            vec![fwd],
                            false,
                        ));
                    }
                }
            }

            // ---------------- backward pass ----------------
            // Model parallelism: a trailing forward all-reduce (last
            // layer sharded) blocks the first backward kernel; then each
            // layer's backward all-reduce blocks the previous layer.
            let mut bwd_ar: Option<TaskId> = fwd_ar.take();
            let mut deferred: Vec<(usize, TaskId)> = Vec::new();
            for i in (0..layers.len()).rev() {
                let layer = &layers[i];
                let mut waits = Vec::new();
                if let Some(ar) = bwd_ar.take() {
                    waits.push(ar);
                }
                p.push(
                    TaskKind::Compute(layer.input_grad().clone()),
                    TaskPhase::Backward,
                    iter,
                    TaskRole::InputGrad { layer: i },
                    waits,
                    true,
                );
                let wg = p.push(
                    TaskKind::Compute(layer.weight_grad().clone()),
                    TaskPhase::Backward,
                    iter,
                    TaskRole::WeightGrad { layer: i },
                    Vec::new(),
                    true,
                );
                if let Some(c) = layer.comm() {
                    if model || opts.overlap {
                        let ar = p.push(
                            TaskKind::Collective {
                                op: c.op,
                                bytes: c.bytes,
                            },
                            TaskPhase::Backward,
                            iter,
                            TaskRole::GradCollective { layer: i },
                            vec![wg],
                            false,
                        );
                        if model {
                            bwd_ar = Some(ar);
                        } else {
                            prev_ar[i] = Some(ar);
                        }
                    } else {
                        deferred.push((i, wg));
                    }
                }
            }

            if let Some(emb) = workload.embedding() {
                // Embedding gradients return to their owner tables
                // (blocking), then the tables are updated before the next
                // iteration. `optimize_embedding` re-anchors the *next*
                // iteration's forward all-to-all here and removes the
                // lookup/update kernels from the timeline.
                let anchor = p.last_timeline().expect("backward kernels precede");
                let bwd_a2a = p.push(
                    TaskKind::Collective {
                        op: CollectiveOp::AllToAll,
                        bytes: emb.bwd_all_to_all_bytes,
                    },
                    TaskPhase::Backward,
                    iter,
                    TaskRole::EmbeddingBwdA2a,
                    vec![anchor],
                    false,
                );
                p.push(
                    TaskKind::Barrier,
                    TaskPhase::Backward,
                    iter,
                    TaskRole::Sync,
                    vec![bwd_a2a],
                    true,
                );
                p.push(
                    TaskKind::Compute(emb.update.clone()),
                    TaskPhase::Backward,
                    iter,
                    TaskRole::EmbeddingUpdate,
                    Vec::new(),
                    true,
                );
            }

            if !deferred.is_empty() {
                // BaselineNoOverlap: one batched communication "kernel"
                // at the end of back-propagation, blocking. Collectives
                // are issued in back-propagation (reverse layer) order
                // and waited in the same order.
                let ars: Vec<TaskId> = deferred
                    .into_iter()
                    .map(|(i, wg)| {
                        let c = layers[i].comm().expect("deferred layers have comm");
                        p.push(
                            TaskKind::Collective {
                                op: c.op,
                                bytes: c.bytes,
                            },
                            TaskPhase::Backward,
                            iter,
                            TaskRole::GradCollective { layer: i },
                            vec![wg],
                            false,
                        )
                    })
                    .collect();
                p.push(
                    TaskKind::Barrier,
                    TaskPhase::Backward,
                    iter,
                    TaskRole::Sync,
                    ars,
                    true,
                );
            }
        }

        debug_assert!(p.validate().is_ok(), "lowered programs are valid");
        p
    }

    /// Pipeline-parallel lowering (see [`Program::lower`]). Layers are
    /// split into `stages` contiguous groups of (near-)equal count; each
    /// microbatch runs one fused forward kernel and one fused backward
    /// (input-grad + weight-grad) kernel per stage, scaled by `1/M`.
    fn lower_pipeline(
        workload: &Workload,
        stages: u32,
        microbatches: u32,
        schedule: PipeSchedule,
        opts: &LoweringOptions,
    ) -> Program {
        let s_n = (stages.max(2)) as usize;
        let m_n = (microbatches.max(1)) as usize;
        let layers = workload.layers();
        assert!(
            layers.len() >= s_n,
            "workload '{}' has {} layers; cannot split into {s_n} pipeline stages",
            workload.name(),
            layers.len()
        );
        let mut p = Program::new(
            workload.name(),
            Parallelism::Pipeline {
                stages,
                microbatches,
                schedule,
            },
            opts.iterations,
        );
        let cut = |s: usize| s * layers.len() / s_n;
        let scale = 1.0 / m_n as f64;

        // Per-stage fused microbatch kernels.
        let mut fwd_kernels = Vec::with_capacity(s_n);
        let mut bwd_kernels = Vec::with_capacity(s_n);
        // Forward activation bytes crossing the s -> s+1 boundary per
        // microbatch (the boundary layer's comm payload, microbatched);
        // gradients cross back the same boundary in the backward pass.
        let mut boundary_bytes = Vec::with_capacity(s_n.saturating_sub(1));
        for s in 0..s_n {
            let group = &layers[cut(s)..cut(s + 1)];
            let (mut ff, mut fb, mut bf, mut bb) = (0.0, 0.0, 0.0, 0.0);
            for l in group {
                ff += l.fwd().flops();
                fb += l.fwd().mem_bytes();
                bf += l.input_grad().flops() + l.weight_grad().flops();
                bb += l.input_grad().mem_bytes() + l.weight_grad().mem_bytes();
            }
            fwd_kernels.push(KernelDesc::new(
                format!("stage{s}-fwd"),
                ff * scale,
                fb * scale,
            ));
            bwd_kernels.push(KernelDesc::new(
                format!("stage{s}-bwd"),
                bf * scale,
                bb * scale,
            ));
            if s + 1 < s_n {
                let boundary = &layers[cut(s + 1) - 1];
                let bytes = boundary.comm().map(|c| c.bytes).unwrap_or(0);
                boundary_bytes.push(bytes.div_ceil(m_n as u64).min(bytes));
            }
        }

        /// One slot of a stage's schedule: which microbatch's forward or
        /// backward pass to run next.
        #[derive(Clone, Copy, PartialEq)]
        enum Item {
            Fwd(usize),
            Bwd(usize),
        }
        // Per-stage task order. GPipe: all forwards, then all backwards.
        // 1F1B: `stages - 1 - s` warmup forwards, a one-forward-one-
        // backward steady state, then the backward drain.
        let order: Vec<Vec<Item>> = (0..s_n)
            .map(|s| {
                let mut o = Vec::with_capacity(2 * m_n);
                match schedule {
                    PipeSchedule::GPipe => {
                        o.extend((0..m_n).map(Item::Fwd));
                        o.extend((0..m_n).map(Item::Bwd));
                    }
                    PipeSchedule::OneFOneB => {
                        let warm = (s_n - 1 - s).min(m_n);
                        o.extend((0..warm).map(Item::Fwd));
                        for m in warm..m_n {
                            o.push(Item::Fwd(m));
                            o.push(Item::Bwd(m - warm));
                        }
                        o.extend((m_n - warm..m_n).map(Item::Bwd));
                    }
                }
                o
            })
            .collect();

        for iter in 0..opts.iterations {
            let mut fwd_id: Vec<Vec<Option<TaskId>>> = vec![vec![None; m_n]; s_n];
            let mut bwd_id: Vec<Vec<Option<TaskId>>> = vec![vec![None; m_n]; s_n];
            let mut fwd_xfer: Vec<Vec<Option<TaskId>>> = vec![vec![None; m_n]; s_n];
            let mut bwd_xfer: Vec<Vec<Option<TaskId>>> = vec![vec![None; m_n]; s_n];
            let mut next = vec![0usize; s_n];
            // Breadth-first topological merge of the per-stage orders:
            // each sweep emits at most one ready item per stage, lowest
            // stage first, so the schedule interleaves stages roughly in
            // time order while preserving each stage's exact sequence.
            loop {
                let mut progressed = false;
                let mut done = true;
                for s in 0..s_n {
                    if next[s] >= order[s].len() {
                        continue;
                    }
                    done = false;
                    let item = order[s][next[s]];
                    match item {
                        Item::Fwd(m) => {
                            if s > 0 && fwd_id[s - 1][m].is_none() {
                                continue;
                            }
                            let mut waits = Vec::new();
                            if s > 0 {
                                waits.push(fwd_xfer[s - 1][m].or(fwd_id[s - 1][m]).unwrap());
                            }
                            let id = p.push_on(
                                s as u32,
                                TaskKind::Compute(fwd_kernels[s].clone()),
                                TaskPhase::Forward,
                                iter,
                                TaskRole::Forward { layer: s },
                                waits,
                                true,
                            );
                            fwd_id[s][m] = Some(id);
                            if s + 1 < s_n && boundary_bytes[s] > 0 {
                                fwd_xfer[s][m] = Some(p.push_on(
                                    s as u32,
                                    TaskKind::Collective {
                                        op: CollectiveOp::SendRecv,
                                        bytes: boundary_bytes[s],
                                    },
                                    TaskPhase::Forward,
                                    iter,
                                    TaskRole::FwdCollective { layer: s },
                                    vec![id],
                                    false,
                                ));
                            }
                        }
                        Item::Bwd(m) => {
                            if s + 1 < s_n && bwd_id[s + 1][m].is_none() {
                                continue;
                            }
                            let mut waits = Vec::new();
                            if s + 1 < s_n {
                                waits.push(bwd_xfer[s + 1][m].or(bwd_id[s + 1][m]).unwrap());
                            }
                            let id = p.push_on(
                                s as u32,
                                TaskKind::Compute(bwd_kernels[s].clone()),
                                TaskPhase::Backward,
                                iter,
                                TaskRole::InputGrad { layer: s },
                                waits,
                                true,
                            );
                            bwd_id[s][m] = Some(id);
                            if s > 0 && boundary_bytes[s - 1] > 0 {
                                bwd_xfer[s][m] = Some(p.push_on(
                                    s as u32,
                                    TaskKind::Collective {
                                        op: CollectiveOp::SendRecv,
                                        bytes: boundary_bytes[s - 1],
                                    },
                                    TaskPhase::Backward,
                                    iter,
                                    TaskRole::GradCollective { layer: s },
                                    vec![id],
                                    false,
                                ));
                            }
                        }
                    }
                    next[s] += 1;
                    progressed = true;
                }
                if done {
                    break;
                }
                assert!(progressed, "pipeline schedule deadlocked");
            }
        }

        debug_assert!(p.validate().is_ok(), "pipeline lowerings are valid");
        p
    }

    // ------------------------------------------------------------------
    // Transforms
    // ------------------------------------------------------------------

    /// The Fig. 12 / Section VI-D DLRM training-loop optimization as a
    /// graph transform: the embedding lookup/update of the next/previous
    /// iteration run in the background on a permanent 1-SM / 80 GB/s
    /// carve-out, and each iteration's forward all-to-all is issued as
    /// soon as the background lookup finishes — iteration 0's before
    /// training starts, iteration `k+1`'s right after iteration `k`'s
    /// last backward kernel.
    ///
    /// Programs without an embedding stage only receive the carve-out
    /// (mirroring the legacy simulator flag, which loaned the resources
    /// whenever the optimization was requested).
    pub fn optimize_embedding(&mut self) {
        self.carveout = Some(ComputeCarveout::embedding_default());
        for iter in 0..self.iterations {
            if let Some(lookup) = self.find_role(iter, TaskRole::EmbeddingLookup) {
                self.remove_task(lookup);
            }
            if let Some(update) = self.find_role(iter, TaskRole::EmbeddingUpdate) {
                self.remove_task(update);
            }
            let Some(a2a) = self.find_role(iter, TaskRole::EmbeddingFwdA2a) else {
                continue;
            };
            if iter == 0 {
                // Iteration 0's lookup ran before training starts, so its
                // all-to-all is already in flight at t = 0.
                self.tasks[a2a.0].deps.clear();
                self.schedule.retain(|&t| t != a2a);
                self.schedule.insert(0, a2a);
            } else {
                // The background lookup finished partway through the
                // previous backward pass; its all-to-all is issued right
                // after the last backward kernel, before the previous
                // iteration's backward all-to-all.
                let anchor = self
                    .find_role(iter - 1, TaskRole::EmbeddingBwdA2a)
                    .expect("hybrid iterations carry a backward all-to-all");
                self.tasks[a2a.0].deps = self.tasks[anchor.0].deps.clone();
                self.schedule.retain(|&t| t != a2a);
                let pos = self
                    .schedule
                    .iter()
                    .position(|&t| t == anchor)
                    .expect("anchor is scheduled");
                self.schedule.insert(pos, a2a);
            }
        }
        debug_assert!(self.validate().is_ok(), "transformed programs stay valid");
    }

    /// Stretches every compute kernel by its straggler multiplier (see
    /// [`StragglerSpec`](crate::StragglerSpec)): flops and HBM bytes
    /// scale together, so the kernel's roofline time stretches by
    /// exactly the multiplier whichever side bounds it. A pure graph
    /// transform keyed on stable task ids — the exact and analytic
    /// tiers consume the same stretched program, and the result is
    /// independent of thread count and schedule order. `det` is a no-op.
    pub fn apply_stragglers(&mut self, spec: &crate::StragglerSpec) {
        if spec.is_det() {
            return;
        }
        for (id, task) in self.tasks.iter_mut().enumerate() {
            if let TaskKind::Compute(kernel) = &mut task.kind {
                let m = spec.multiplier(id);
                *kernel = KernelDesc::new(
                    kernel.name().to_string(),
                    kernel.flops() * m,
                    kernel.mem_bytes() * m,
                );
            }
        }
    }

    /// Removes `id` from the schedule, splicing its dependencies into
    /// every dependent (so serialization chains stay intact).
    fn remove_task(&mut self, id: TaskId) {
        let inherited = self.tasks[id.0].deps.clone();
        self.schedule.retain(|&t| t != id);
        for task in &mut self.tasks {
            if let Some(pos) = task.deps.iter().position(|&d| d == id) {
                task.deps.remove(pos);
                let mut at = pos;
                for &d in &inherited {
                    if !task.deps.contains(&d) {
                        task.deps.insert(at, d);
                        at += 1;
                    }
                }
            }
        }
    }
}

/// The outcome of an [analytic walk](Program::analytic_walk): the same
/// total = compute + exposed identity the event-driven scheduler reports.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AnalyticWalk {
    /// End-to-end time in cycles (critical-path length).
    pub total_cycles: f64,
    /// Cycles the compute timeline spent in kernels.
    pub compute_cycles: f64,
    /// Cycles the timeline stalled on collectives (exposed communication).
    pub exposed_cycles: f64,
    /// Per-node bytes issued to the fabric across all collectives.
    pub collective_bytes: u64,
}

impl Program {
    /// Walks the schedule with closed-form task durations — the analytic
    /// tier's critical-path scheduler. Mirrors the event-driven
    /// scheduler's execution model exactly (one serial compute timeline;
    /// collectives issued non-blocking at the current instant; compute
    /// and barriers stalling on their collective dependencies) but
    /// replaces the collective executor with `collective_cycles` and the
    /// NPU roofline with `compute_cycles`, and approximates the shared
    /// fabric as a single serializing resource: a collective issued while
    /// an earlier one is still draining starts after it.
    ///
    /// The walk therefore computes the critical path of the DAG under
    /// those durations, in one pass over the schedule.
    ///
    /// Multi-timeline programs (pipeline lowerings) walk one frontier
    /// per timeline: cross-timeline dependencies become real waits —
    /// pipeline bubbles. For those programs `compute_cycles` reports the
    /// *per-stage mean* kernel time (total kernel cycles / timelines)
    /// and `exposed_cycles` the remainder, preserving the
    /// `total = compute + exposed` identity; the exposed fraction of a
    /// communication-free uniform GPipe pipeline is then exactly the
    /// textbook bubble fraction `(S-1)/(M+S-1)`.
    pub fn analytic_walk(
        &self,
        mut compute_cycles: impl FnMut(&KernelDesc) -> u64,
        mut collective_cycles: impl FnMut(CollectiveOp, u64) -> f64,
    ) -> AnalyticWalk {
        let nt = self.timelines().max(1);
        let mut finish: Vec<f64> = vec![0.0; self.tasks.len()];
        let mut t: Vec<f64> = vec![0.0; nt]; // per-timeline compute frontiers
        let mut net_free: f64 = 0.0; // fabric single-server frontier
        let mut walk = AnalyticWalk::default();
        for (id, task) in self.iter_scheduled() {
            let k = task.timeline();
            match task.kind() {
                TaskKind::Collective { op, bytes } => {
                    let start = t[k].max(net_free);
                    let done = start + collective_cycles(*op, *bytes);
                    finish[id.index()] = done;
                    net_free = done;
                    walk.collective_bytes += bytes;
                }
                TaskKind::Compute(_) | TaskKind::Barrier => {
                    for &dep in task.deps() {
                        let done = finish[dep.index()];
                        if done > t[k] {
                            walk.exposed_cycles += done - t[k];
                            t[k] = done;
                        }
                    }
                    if let TaskKind::Compute(kernel) = task.kind() {
                        let cycles = compute_cycles(kernel) as f64;
                        walk.compute_cycles += cycles;
                        t[k] += cycles;
                    }
                    finish[id.index()] = t[k];
                }
            }
        }
        // Drain outstanding collectives: the next iteration could not
        // start before they finish, so the tail stall is exposed.
        let mut end = t.iter().copied().fold(0.0_f64, f64::max);
        if net_free > end {
            walk.exposed_cycles += net_free - end;
            end = net_free;
        }
        walk.total_cycles = end;
        if nt > 1 {
            // Per-stage mean accounting (see doc comment above): the
            // incremental stall tally mixes per-stage clocks, so rebuild
            // the identity from the end-to-end time instead.
            walk.compute_cycles /= nt as f64;
            walk.exposed_cycles = (end - walk.compute_cycles).max(0.0);
        }
        walk
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} tasks, {} iterations)",
            self.name,
            self.parallelism,
            self.schedule.len(),
            self.iterations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_role(p: &Program, pred: impl Fn(TaskRole) -> bool) -> usize {
        p.iter_scheduled().filter(|(_, t)| pred(t.role())).count()
    }

    #[test]
    fn stragglers_stretch_compute_deterministically() {
        let w = Workload::resnet50();
        let opts = LoweringOptions {
            iterations: 2,
            overlap: true,
        };
        let base = Program::lower(&w, Parallelism::Data, &opts);
        let spec: crate::StragglerSpec = "lognormal:0.3@seed:5".parse().unwrap();
        let mut a = base.clone();
        a.apply_stragglers(&spec);
        a.validate().unwrap();
        let mut b = base.clone();
        b.apply_stragglers(&spec);
        let mut stretched = 0usize;
        for (id, task) in base.iter_scheduled() {
            match (task.kind(), a.task(id).kind(), b.task(id).kind()) {
                (TaskKind::Compute(orig), TaskKind::Compute(ka), TaskKind::Compute(kb)) => {
                    // Same seed ⇒ bit-identical stretch; flops and bytes
                    // scale by the same multiplier.
                    assert_eq!(ka.flops(), kb.flops());
                    let m = ka.flops() / orig.flops();
                    assert!((ka.mem_bytes() / orig.mem_bytes() - m).abs() < 1e-12);
                    if m != 1.0 {
                        stretched += 1;
                    }
                }
                (TaskKind::Compute(_), _, _) => panic!("kind changed under stragglers"),
                _ => {}
            }
        }
        assert!(stretched > 0, "some kernel must stretch");
        // det leaves the program untouched.
        let mut c = base.clone();
        c.apply_stragglers(&crate::StragglerSpec::Det);
        for (id, task) in base.iter_scheduled() {
            if let (TaskKind::Compute(orig), TaskKind::Compute(kc)) =
                (task.kind(), c.task(id).kind())
            {
                assert_eq!(orig.flops(), kc.flops());
            }
        }
    }

    #[test]
    fn data_parallel_lowering_matches_loop_structure() {
        let w = Workload::resnet50();
        let iters = 2;
        let p = Program::lower(
            &w,
            Parallelism::Data,
            &LoweringOptions {
                iterations: iters,
                overlap: true,
            },
        );
        p.validate().unwrap();
        let l = w.layers().len();
        // Per iteration: fwd + ig + wg per layer, one AR per comm layer.
        assert_eq!(
            count_role(&p, |r| matches!(r, TaskRole::Forward { .. })),
            l * 2
        );
        assert_eq!(
            count_role(&p, |r| matches!(r, TaskRole::GradCollective { .. })),
            l * 2
        );
        assert_eq!(p.grad_collective_bytes(0), w.total_comm_bytes());
        assert_eq!(p.grad_collective_bytes(1), w.total_comm_bytes());
        // Iteration 1's forward layers block on iteration 0's ARs.
        let fwd1 = p.find_role(1, TaskRole::Forward { layer: 0 }).unwrap();
        let blocks: Vec<TaskRole> = p
            .task(fwd1)
            .deps()
            .iter()
            .map(|&d| p.task(d).role())
            .collect();
        assert!(blocks.contains(&TaskRole::GradCollective { layer: 0 }));
    }

    #[test]
    fn no_overlap_lowering_defers_behind_a_barrier() {
        let w = Workload::gnmt();
        let p = Program::lower(
            &w,
            Parallelism::Data,
            &LoweringOptions {
                iterations: 1,
                overlap: false,
            },
        );
        p.validate().unwrap();
        // Forward tasks have no collective waits.
        for (_, t) in p.iter_scheduled() {
            if matches!(t.role(), TaskRole::Forward { .. }) {
                for &d in t.deps() {
                    assert!(p.task(d).is_timeline(), "no-overlap fwd must not block");
                }
            }
        }
        // One barrier waits every AR in back-propagation order.
        let barrier = p.find_role(0, TaskRole::Sync).unwrap();
        let ars: Vec<usize> = p
            .task(barrier)
            .deps()
            .iter()
            .filter_map(|&d| match p.task(d).role() {
                TaskRole::GradCollective { layer } => Some(layer),
                _ => None,
            })
            .collect();
        let mut rev = ars.clone();
        rev.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(ars, rev, "waits follow reverse-layer issue order");
        assert!(!ars.is_empty());
    }

    #[test]
    fn hybrid_lowering_wires_the_embedding_pipeline() {
        let w = Workload::dlrm(16);
        let p = Program::lower(&w, Parallelism::Hybrid, &LoweringOptions::default());
        p.validate().unwrap();
        let top = w.embedding().unwrap().top_mlp_start;
        let top_task = p.find_role(0, TaskRole::Forward { layer: top }).unwrap();
        let waits: Vec<TaskRole> = p
            .task(top_task)
            .deps()
            .iter()
            .map(|&d| p.task(d).role())
            .collect();
        assert!(waits.contains(&TaskRole::EmbeddingFwdA2a));
        // The backward all-to-all is waited by a barrier, then the update
        // runs.
        assert!(p.find_role(0, TaskRole::EmbeddingBwdA2a).is_some());
        assert!(p.find_role(0, TaskRole::EmbeddingUpdate).is_some());
    }

    #[test]
    fn optimize_embedding_moves_the_exchanges_and_drops_the_kernels() {
        let w = Workload::dlrm(16);
        let mut p = Program::lower(&w, Parallelism::Hybrid, &LoweringOptions::default());
        p.optimize_embedding();
        p.validate().unwrap();
        assert_eq!(p.carveout(), Some(ComputeCarveout::embedding_default()));
        // Lookup/update kernels left the schedule.
        assert_eq!(count_role(&p, |r| r == TaskRole::EmbeddingLookup), 0);
        assert_eq!(count_role(&p, |r| r == TaskRole::EmbeddingUpdate), 0);
        // Iteration 0's forward all-to-all is the very first task, with
        // no dependencies (in flight at t = 0).
        let first = p.schedule()[0];
        assert_eq!(p.task(first).role(), TaskRole::EmbeddingFwdA2a);
        assert!(p.task(first).deps().is_empty());
        // Iteration 1's forward all-to-all is issued during iteration
        // 0's backward pass, right before the backward all-to-all.
        let a2a1 = p.find_role(1, TaskRole::EmbeddingFwdA2a).unwrap();
        let bwd0 = p.find_role(0, TaskRole::EmbeddingBwdA2a).unwrap();
        let pos = |id| p.schedule().iter().position(|&t| t == id).unwrap();
        assert_eq!(pos(a2a1) + 1, pos(bwd0));
    }

    #[test]
    fn optimize_embedding_without_embedding_only_sets_the_carveout() {
        let w = Workload::resnet50();
        let mut p = Program::lower(&w, Parallelism::Data, &LoweringOptions::default());
        let n = p.len();
        p.optimize_embedding();
        p.validate().unwrap();
        assert_eq!(p.len(), n);
        assert!(p.carveout().is_some());
    }

    #[test]
    fn model_parallel_lowering_blocks_both_passes() {
        let w = Workload::transformer_lm();
        let p = Program::lower(
            &w,
            Parallelism::Model,
            &LoweringOptions {
                iterations: 1,
                overlap: true,
            },
        );
        p.validate().unwrap();
        // Forward collectives exist and block the next forward layer.
        let ar1 = p
            .find_role(0, TaskRole::FwdCollective { layer: 1 })
            .unwrap();
        let fwd2 = p.find_role(0, TaskRole::Forward { layer: 2 }).unwrap();
        assert!(p.task(fwd2).deps().contains(&ar1));
        // Backward collectives block the previous layer's input-gradient.
        let bar2 = p
            .find_role(0, TaskRole::GradCollective { layer: 2 })
            .unwrap();
        let ig1 = p.find_role(0, TaskRole::InputGrad { layer: 1 }).unwrap();
        assert!(p.task(ig1).deps().contains(&bar2));
        // No weight-gradient collectives under tensor parallelism: the
        // grad collectives are input-gradient exchanges anchored on wg,
        // and fwd+bwd bytes double the data-parallel per-iteration total.
        assert_eq!(
            p.total_collective_bytes(),
            2 * w.total_comm_bytes(),
            "fwd + bwd activation exchanges"
        );
    }

    #[test]
    fn custom_programs_validate_and_reject_bad_schedules() {
        use ace_compute::KernelDesc;
        let mut p = Program::new("custom", Parallelism::Data, 1);
        let k = KernelDesc::new("k", 1.0e9, 1.0e7);
        let c0 = p.add_compute(k.clone(), TaskPhase::Forward, 0, vec![]);
        let ar = p.add_collective(
            CollectiveOp::AllReduce,
            1 << 20,
            TaskPhase::Backward,
            0,
            vec![c0],
        );
        let _b = p.add_barrier(TaskPhase::Backward, 0, vec![ar]);
        p.validate().unwrap();
        assert_eq!(p.len(), 3);

        // A forward reference breaks topological order.
        let mut bad = p.clone();
        bad.schedule.swap(0, 2);
        assert!(bad.validate().is_err());
        // Duplicate scheduling is rejected.
        let mut dup = p.clone();
        dup.schedule.push(c0);
        assert!(dup.validate().is_err());
    }

    #[test]
    fn analytic_walk_holds_the_total_identity() {
        // total = compute + exposed, exactly, for every lowering.
        for (w, par) in [
            (Workload::resnet50(), Parallelism::Data),
            (Workload::dlrm(16), Parallelism::Hybrid),
            (Workload::transformer_lm(), Parallelism::Model),
        ] {
            let p = Program::lower(&w, par, &LoweringOptions::default());
            let walk = p.analytic_walk(
                |k| (k.flops() / 1e6).ceil() as u64 + 1,
                |_, bytes| bytes as f64 / 20.0,
            );
            let sum = walk.compute_cycles + walk.exposed_cycles;
            assert!(
                (walk.total_cycles - sum).abs() < 1e-6,
                "{par:?}: total {} != compute+exposed {sum}",
                walk.total_cycles
            );
            assert_eq!(walk.collective_bytes, p.total_collective_bytes());
        }
    }

    #[test]
    fn analytic_walk_without_collectives_is_pure_compute() {
        let mut p = Program::new("compute-only", Parallelism::Data, 1);
        let k = KernelDesc::new("k", 1.0e9, 1.0e7);
        for _ in 0..5 {
            p.add_compute(k.clone(), TaskPhase::Forward, 0, vec![]);
        }
        let walk = p.analytic_walk(|_| 100, |_, _| panic!("no collectives"));
        assert_eq!(walk.total_cycles, 500.0);
        assert_eq!(walk.exposed_cycles, 0.0);
        assert_eq!(walk.collective_bytes, 0);
    }

    #[test]
    fn analytic_walk_serializes_the_fabric() {
        // Two collectives issued back-to-back share the fabric: the
        // second starts when the first drains.
        let mut p = Program::new("two-ars", Parallelism::Data, 1);
        let k = KernelDesc::new("k", 1.0, 1.0);
        let c = p.add_compute(k.clone(), TaskPhase::Forward, 0, vec![]);
        let a = p.add_collective(
            CollectiveOp::AllReduce,
            100,
            TaskPhase::Backward,
            0,
            vec![c],
        );
        let b = p.add_collective(
            CollectiveOp::AllReduce,
            100,
            TaskPhase::Backward,
            0,
            vec![c],
        );
        let _bar = p.add_barrier(TaskPhase::Backward, 0, vec![a, b]);
        let walk = p.analytic_walk(|_| 10, |_, bytes| bytes as f64);
        // 10 compute + 100 (first) + 100 (queued second) = 210.
        assert_eq!(walk.total_cycles, 210.0);
        assert_eq!(walk.exposed_cycles, 200.0);
    }

    fn uniform_pipeline_workload(layers: usize, comm: Option<crate::LayerComm>) -> Workload {
        let table: Vec<crate::Layer> = (0..layers)
            .map(|i| crate::Layer::from_fwd(format!("l{i}"), 8.0e3, 8.0e3, comm))
            .collect();
        Workload::data_parallel("uniform", table, 1)
    }

    #[test]
    fn pipeline_lowerings_validate_and_partition_stages() {
        for schedule in [PipeSchedule::GPipe, PipeSchedule::OneFOneB] {
            let w = uniform_pipeline_workload(8, None);
            let par = Parallelism::Pipeline {
                stages: 4,
                microbatches: 6,
                schedule,
            };
            let p = Program::lower(&w, par, &LoweringOptions::default());
            p.validate().unwrap();
            assert_eq!(p.timelines(), 4);
            // Per iteration: one fwd + one bwd kernel per (stage, microbatch).
            assert_eq!(
                count_role(&p, |r| matches!(r, TaskRole::Forward { .. })),
                2 * 4 * 6
            );
            assert_eq!(
                count_role(&p, |r| matches!(r, TaskRole::InputGrad { .. })),
                2 * 4 * 6
            );
            // Zero-byte boundaries emit no transfer collectives.
            assert_eq!(p.total_collective_bytes(), 0);
        }
    }

    #[test]
    fn pipeline_boundary_transfers_are_microbatched_send_recvs() {
        let comm = crate::LayerComm {
            op: CollectiveOp::AllReduce,
            bytes: 96,
        };
        let w = uniform_pipeline_workload(4, Some(comm));
        let par = Parallelism::Pipeline {
            stages: 4,
            microbatches: 3,
            schedule: PipeSchedule::GPipe,
        };
        let p = Program::lower(
            &w,
            par,
            &LoweringOptions {
                iterations: 1,
                overlap: true,
            },
        );
        p.validate().unwrap();
        let mut xfers = 0;
        for (_, t) in p.iter_scheduled() {
            if let TaskKind::Collective { op, bytes } = t.kind() {
                assert_eq!(*op, CollectiveOp::SendRecv);
                assert_eq!(*bytes, 32, "96-byte boundary split over 3 microbatches");
                xfers += 1;
            }
        }
        // 3 boundaries × 3 microbatches × (fwd activation + bwd gradient).
        assert_eq!(xfers, 3 * 3 * 2);
    }

    #[test]
    fn gpipe_bubble_fraction_matches_the_closed_form() {
        // Uniform communication-free stages: exposed/total must equal
        // (S-1)/(M+S-1) exactly under the analytic walk.
        for (s, m) in [(2, 2), (4, 8), (3, 5), (6, 1)] {
            let w = uniform_pipeline_workload(s as usize, None);
            let par = Parallelism::Pipeline {
                stages: s,
                microbatches: m,
                schedule: PipeSchedule::GPipe,
            };
            let p = Program::lower(
                &w,
                par,
                &LoweringOptions {
                    iterations: 1,
                    overlap: true,
                },
            );
            let walk = p.analytic_walk(|k| k.flops() as u64, |_, _| panic!("communication-free"));
            let bubble = walk.exposed_cycles / walk.total_cycles;
            let expect = (s as f64 - 1.0) / (m as f64 + s as f64 - 1.0);
            assert!(
                (bubble - expect).abs() < 1e-9,
                "S={s} M={m}: bubble {bubble} != {expect}"
            );
            let sum = walk.compute_cycles + walk.exposed_cycles;
            assert!((walk.total_cycles - sum).abs() < 1e-9);
        }
    }

    #[test]
    fn one_f_one_b_matches_gpipe_on_uniform_stages() {
        // Same DAG, different per-stage order: end-to-end time is equal
        // for uniform communication-free stages (both achieve the
        // textbook (M+S-1)(tf+tb) pipeline latency).
        let w = uniform_pipeline_workload(4, None);
        let mk = |schedule| {
            let p = Program::lower(
                &w,
                Parallelism::Pipeline {
                    stages: 4,
                    microbatches: 8,
                    schedule,
                },
                &LoweringOptions {
                    iterations: 1,
                    overlap: true,
                },
            );
            p.validate().unwrap();
            p.analytic_walk(|k| k.flops() as u64, |_, _| 0.0)
                .total_cycles
        };
        assert_eq!(mk(PipeSchedule::GPipe), mk(PipeSchedule::OneFOneB));
    }

    #[test]
    fn one_f_one_b_is_never_slower_than_gpipe_on_random_draws() {
        // 1F1B reorders each stage's work but never adds dependencies, so
        // for any stage geometry and any (non-uniform) per-layer cost its
        // end-to-end time is at most GPipe's. 50 seeded random draws of
        // (layers, stages, microbatches, per-layer flops, boundary bytes).
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            // splitmix64: deterministic, no external crates.
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        for draw in 0..50 {
            let stages = 2 + (next() % 5) as u32; // 2..=6
            let layers = stages as usize + (next() % 8) as usize;
            let microbatches = 1 + (next() % 12) as u32; // 1..=12
            let table: Vec<crate::Layer> = (0..layers)
                .map(|i| {
                    let flops = 1.0e3 + (next() % 64_000) as f64;
                    let comm = (next() % 2 == 0).then_some(crate::LayerComm {
                        op: CollectiveOp::AllReduce,
                        bytes: 64 + next() % 4096,
                    });
                    crate::Layer::from_fwd(format!("l{i}"), flops, flops, comm)
                })
                .collect();
            let w = Workload::data_parallel("random-pipe", table, 1);
            let walk = |schedule| {
                let p = Program::lower(
                    &w,
                    Parallelism::Pipeline {
                        stages,
                        microbatches,
                        schedule,
                    },
                    &LoweringOptions {
                        iterations: 1,
                        overlap: true,
                    },
                );
                p.validate().unwrap();
                p.analytic_walk(|k| k.flops() as u64, |_, bytes| bytes as f64 / 32.0)
                    .total_cycles
            };
            let gpipe = walk(PipeSchedule::GPipe);
            let one_f = walk(PipeSchedule::OneFOneB);
            assert!(
                one_f <= gpipe + 1e-6,
                "draw {draw} (S={stages} M={microbatches} L={layers}): \
                 1F1B {one_f} > GPipe {gpipe}"
            );
        }
    }

    #[test]
    fn chain_deps_serialize_the_timeline() {
        let w = Workload::gnmt();
        let p = Program::lower(&w, Parallelism::Data, &LoweringOptions::default());
        // Every timeline task except the first depends on the previous
        // timeline task.
        let timeline: Vec<TaskId> = p
            .iter_scheduled()
            .filter(|(_, t)| t.is_timeline())
            .map(|(id, _)| id)
            .collect();
        for pair in timeline.windows(2) {
            assert!(
                p.task(pair[1]).deps().contains(&pair[0]),
                "{} must chain to {}",
                pair[1],
                pair[0]
            );
        }
    }
}
