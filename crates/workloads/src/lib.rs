//! DNN training workload models: ResNet-50, GNMT, and DLRM (Section V).
//!
//! Each workload is a list of [`Layer`]s carrying roofline kernel
//! descriptors for the three training passes (forward, input-gradient,
//! weight-gradient) plus the collective each layer emits during
//! back-propagation. ResNet-50 and GNMT train data-parallel (per-layer
//! weight-gradient all-reduce); DLRM trains hybrid-parallel — data-parallel
//! MLPs with all-reduce, model-parallel embedding tables with all-to-all
//! (Section V, refs \[41\], \[47\]).
//!
//! # Calibration
//!
//! The paper's compute times come from SCALE-sim; we derive flops exactly
//! from the layer shapes and calibrate memory-byte counts so every
//! workload sits on the **memory-bound** side of the roofline, as the
//! paper's own Table VI arithmetic requires (BaselineCompOpt's 772 GB/s
//! compute partition vs BaselineCommOpt's 450 GB/s produces the reported
//! 1.75× compute-time gap only if kernels are bandwidth-bound). Mini-batch
//! sizes per NPU follow Section V: 32 (ResNet-50), 128 (GNMT), 512 (DLRM),
//! with weak scaling.
//!
//! # Example
//!
//! ```
//! use ace_workloads::Workload;
//!
//! let w = Workload::resnet50();
//! assert!(w.layers().len() > 50);
//! // ~25.5M parameters => ~51 MB of FP16 weight gradients per iteration.
//! let mb = w.total_comm_bytes() as f64 / 1e6;
//! assert!(mb > 40.0 && mb < 60.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dlrm;
mod gnmt;
mod layer;
pub mod program;
mod resnet;
mod spec;
mod straggler;
mod transformer;
mod workload;

pub use layer::{Layer, LayerComm};
pub use program::{
    AnalyticWalk, ComputeCarveout, LoweringOptions, Program, Task, TaskId, TaskKind, TaskPhase,
    TaskRole,
};
pub use spec::{BuiltinWorkload, EmbeddingSpec, LayerSpec, WorkloadSpec};
pub use straggler::StragglerSpec;
pub use workload::{EmbeddingStage, Parallelism, PipeSchedule, Workload};
