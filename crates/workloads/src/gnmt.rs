//! GNMT layer table (Wu et al. [58]), mini-batch 128 per NPU.
//!
//! 8-layer encoder + 8-layer decoder LSTM stack with 1024 hidden units,
//! additive attention, a shared 32 K-word embedding and the softmax
//! projection. Each LSTM layer carries ≈8.4 M parameters (4 gates ×
//! [x; h] → h), so back-prop emits few but **large** all-reduces —
//! "in GNMT, communication sizes (per layer) are larger" (Section VI-B).
//!
//! The effective unrolled sequence length is 8 steps; this is the knob the
//! compute substrate exposes (SCALE-sim in the paper), and it scales
//! compute time without affecting communication sizes.

use ace_collectives::CollectiveOp;

use crate::layer::{calibrated_bytes, grad_bytes, Layer, LayerComm, FP16};
use crate::workload::Workload;

const MAX_INTENSITY: f64 = 100.0;
/// Compute-time calibration matching the paper's SCALE-sim-derived GNMT
/// compute times; scales flops and bytes together (see the ResNet-50
/// module for the rationale).
const COMPUTE_TIME_SCALE: f64 = 0.5;
const HIDDEN: f64 = 1024.0;
const VOCAB: f64 = 32_000.0;
const SEQ: f64 = 8.0;

fn lstm_layer(name: String, batch: f64) -> Layer {
    // 4 gates, each [x; h] (2 x 1024) -> 1024.
    let params = 4.0 * (2.0 * HIDDEN) * HIDDEN;
    let fwd_flops = 2.0 * params * SEQ * batch * COMPUTE_TIME_SCALE;
    let raw = (params + 2.0 * HIDDEN * SEQ * batch) * FP16 * COMPUTE_TIME_SCALE;
    let bytes = calibrated_bytes(fwd_flops, raw, MAX_INTENSITY);
    Layer::from_fwd(
        name,
        fwd_flops,
        bytes,
        Some(LayerComm {
            op: CollectiveOp::AllReduce,
            bytes: grad_bytes(params),
        }),
    )
}

/// Builds GNMT for `batch` samples per NPU.
pub(crate) fn build(batch: u32) -> Workload {
    let b = batch as f64;
    let mut layers = Vec::new();

    // Shared source/target embedding: 32K x 1024 (gradients all-reduced).
    let emb_params = VOCAB * HIDDEN;
    let emb_flops = 2.0 * HIDDEN * SEQ * b * COMPUTE_TIME_SCALE; // gather + scale
    let emb_raw = (SEQ * b * HIDDEN * 2.0 + emb_params * 0.01) * FP16 * COMPUTE_TIME_SCALE;
    // Embedding gradients are sparse (only the batch's tokens are
    // touched) and exchanged sparsely in practice, so no dense per-layer
    // all-reduce is attached here.
    layers.push(Layer::from_fwd(
        "embedding",
        emb_flops,
        calibrated_bytes(emb_flops, emb_raw, MAX_INTENSITY),
        None,
    ));

    for i in 0..8 {
        layers.push(lstm_layer(format!("encoder_l{i}"), b));
    }

    // Additive attention: query/key projections + score, ~2.1M params.
    let attn_params = 2.0 * HIDDEN * HIDDEN + HIDDEN;
    let attn_flops =
        (2.0 * attn_params * SEQ * b + 2.0 * SEQ * SEQ * HIDDEN * b) * COMPUTE_TIME_SCALE;
    let attn_raw = (attn_params + 2.0 * SEQ * b * HIDDEN) * FP16 * COMPUTE_TIME_SCALE;
    layers.push(Layer::from_fwd(
        "attention",
        attn_flops,
        calibrated_bytes(attn_flops, attn_raw, MAX_INTENSITY),
        Some(LayerComm {
            op: CollectiveOp::AllReduce,
            bytes: grad_bytes(attn_params),
        }),
    ));

    for i in 0..8 {
        layers.push(lstm_layer(format!("decoder_l{i}"), b));
    }

    // Softmax projection 1024 -> 32K (weights tied to the embedding in
    // MLPerf GNMT; we keep its compute but attach no separate gradient
    // all-reduce).
    let proj_flops = 2.0 * HIDDEN * VOCAB * SEQ * b * COMPUTE_TIME_SCALE;
    let proj_raw = (emb_params + SEQ * b * VOCAB) * FP16 * COMPUTE_TIME_SCALE;
    layers.push(Layer::from_fwd(
        "projection",
        proj_flops,
        calibrated_bytes(proj_flops, proj_raw, MAX_INTENSITY),
        None,
    ));

    Workload::data_parallel("GNMT", layers, batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_structure() {
        let w = build(128);
        // embedding + 8 enc + attention + 8 dec + projection = 19.
        assert_eq!(w.layers().len(), 19);
    }

    #[test]
    fn per_layer_collectives_are_large() {
        // Section VI-B: GNMT per-layer comm sizes are larger than
        // ResNet-50's.
        let gnmt = build(128);
        let resnet = crate::resnet::build(32);
        let gnmt_max = gnmt
            .layers()
            .iter()
            .filter_map(|l| l.comm())
            .map(|c| c.bytes)
            .max()
            .unwrap();
        let resnet_max = resnet
            .layers()
            .iter()
            .filter_map(|l| l.comm())
            .map(|c| c.bytes)
            .max()
            .unwrap();
        assert!(gnmt_max > 2 * resnet_max);
        // Each LSTM layer: 8.4M params => ~16.8 MB FP16.
        let lstm = gnmt.layers()[1].comm().unwrap().bytes;
        assert!((16 << 20..18 << 20).contains(&lstm), "lstm AR {lstm}");
    }

    #[test]
    fn total_params_are_gnmt_scale() {
        let w = build(128);
        let params: f64 = w
            .layers()
            .iter()
            .filter_map(|l| l.comm())
            .map(|c| c.bytes as f64 / FP16)
            .sum();
        // 16 dense-gradient LSTM layers x 8.4M + attention ~2M ≈ 136M
        // (embedding/projection gradients are sparse, not all-reduced).
        assert!((120.0e6..150.0e6).contains(&params), "params {params:.3e}");
    }

    #[test]
    fn gnmt_compute_exceeds_resnet() {
        // Larger compute time => "more room to overlap communication".
        assert!(build(128).total_flops() > crate::resnet::build(32).total_flops());
    }

    #[test]
    fn memory_bound_calibration_holds() {
        for l in build(128).layers() {
            assert!(l.fwd().intensity() <= MAX_INTENSITY + 1e-6, "{}", l.name());
        }
    }
}
