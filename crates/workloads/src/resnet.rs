//! ResNet-50 v1.5 layer table (He et al. [21]), mini-batch 32 per NPU.
//!
//! The architecture is encoded exactly: the 7×7 stem, four bottleneck
//! stages of [3, 4, 6, 3] blocks (each 1×1 → 3×3 → 1×1 plus a projection
//! shortcut on the first block of a stage), global pooling and the
//! 2048→1000 classifier — 53 convolutions + 1 FC ≈ 25.5 M parameters.
//! Every layer's FP16 weight gradients are all-reduced during back-prop,
//! which is why ResNet-50 "issues many small-size collectives"
//! (Section VI-B).

use ace_collectives::CollectiveOp;

use crate::layer::{calibrated_bytes, grad_bytes, Layer, LayerComm, FP16};
use crate::workload::Workload;

/// Memory-bound calibration ceiling (flops/byte); see crate docs.
const MAX_INTENSITY: f64 = 110.0;

/// Compute-time calibration: the paper's compute substrate (SCALE-sim)
/// reports per-layer latencies several times shorter than an exact-flop
/// roofline at batch 32 (its BaselineCommOpt iteration is ≈2.4 ms where
/// exact fwd+2·bwd ResNet-50 flops alone need >6 ms at 111 TFLOPS). We
/// scale flops and bytes together — preserving arithmetic intensity and
/// the memory-bound calibration — so simulated compute times match the
/// paper's regime and the compute/communication balance is faithful.
const COMPUTE_TIME_SCALE: f64 = 0.15;

/// One convolution's aggregate figures.
struct Conv {
    name: String,
    params: f64,
    fwd_flops: f64,
    raw_bytes: f64,
}

fn conv(name: String, cin: f64, cout: f64, k: f64, out_hw: f64, batch: f64) -> Conv {
    let params = k * k * cin * cout;
    let out_elems = out_hw * out_hw * cout;
    let in_elems = out_hw * out_hw * cin; // pre-stride approximation
    let fwd_flops = 2.0 * params * out_hw * out_hw * batch;
    let raw_bytes = (in_elems * batch + out_elems * batch + params) * FP16;
    Conv {
        name,
        params,
        fwd_flops,
        raw_bytes,
    }
}

fn layer_from(c: Conv) -> Layer {
    let flops = c.fwd_flops * COMPUTE_TIME_SCALE;
    let bytes = calibrated_bytes(flops, c.raw_bytes * COMPUTE_TIME_SCALE, MAX_INTENSITY);
    Layer::from_fwd(
        c.name,
        flops,
        bytes,
        Some(LayerComm {
            op: CollectiveOp::AllReduce,
            bytes: grad_bytes(c.params),
        }),
    )
}

/// Builds ResNet-50 for `batch` samples per NPU.
pub(crate) fn build(batch: u32) -> Workload {
    let b = batch as f64;
    let mut convs: Vec<Conv> = Vec::new();

    // Stem: 7x7/2, 3 -> 64, output 112x112.
    convs.push(conv("conv1".into(), 3.0, 64.0, 7.0, 112.0, b));

    // (in_ch entering stage, mid channels, out channels, blocks, spatial)
    let stages: [(f64, f64, f64, usize, f64); 4] = [
        (64.0, 64.0, 256.0, 3, 56.0),
        (256.0, 128.0, 512.0, 4, 28.0),
        (512.0, 256.0, 1024.0, 6, 14.0),
        (1024.0, 512.0, 2048.0, 3, 7.0),
    ];

    for (si, (cin_stage, mid, cout, blocks, hw)) in stages.into_iter().enumerate() {
        for blk in 0..blocks {
            let cin = if blk == 0 { cin_stage } else { cout };
            let base = format!("res{}_{blk}", si + 2);
            convs.push(conv(format!("{base}_1x1a"), cin, mid, 1.0, hw, b));
            convs.push(conv(format!("{base}_3x3"), mid, mid, 3.0, hw, b));
            convs.push(conv(format!("{base}_1x1b"), mid, cout, 1.0, hw, b));
            if blk == 0 {
                // Projection shortcut.
                convs.push(conv(format!("{base}_proj"), cin, cout, 1.0, hw, b));
            }
        }
    }

    let mut layers: Vec<Layer> = convs.into_iter().map(layer_from).collect();

    // Classifier: 2048 -> 1000.
    let fc_params = 2048.0 * 1000.0 + 1000.0;
    let fc_flops = 2.0 * fc_params * b * COMPUTE_TIME_SCALE;
    let fc_bytes = calibrated_bytes(
        fc_flops,
        (2048.0 * b + 1000.0 * b + fc_params) * FP16 * COMPUTE_TIME_SCALE,
        MAX_INTENSITY,
    );
    layers.push(Layer::from_fwd(
        "fc1000",
        fc_flops,
        fc_bytes,
        Some(LayerComm {
            op: CollectiveOp::AllReduce,
            bytes: grad_bytes(fc_params),
        }),
    ));

    Workload::data_parallel("ResNet-50", layers, batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_is_about_25_5m() {
        let w = build(32);
        let params: f64 = w
            .layers()
            .iter()
            .filter_map(|l| l.comm())
            .map(|c| c.bytes as f64 / FP16)
            .sum();
        assert!(
            (24.0e6..27.0e6).contains(&params),
            "params {params:.3e} outside ResNet-50 range"
        );
    }

    #[test]
    fn layer_count_is_53_convs_plus_fc() {
        let w = build(32);
        assert_eq!(w.layers().len(), 54);
    }

    #[test]
    fn forward_flops_near_3_9_gmacs_per_image() {
        // ResNet-50 is ≈3.86 GMACs per 224×224 image = ~7.7 GFLOPs when a
        // multiply-add counts as two operations.
        let w = build(1);
        let fwd: f64 = w.layers().iter().map(|l| l.fwd().flops()).sum::<f64>() / COMPUTE_TIME_SCALE;
        assert!((7.0e9..8.6e9).contains(&fwd), "fwd flops/image {fwd:.3e}");
    }

    #[test]
    fn collectives_are_many_and_small() {
        // Section VI-B: "Resnet-50 issues many small-size collectives".
        let w = build(32);
        let sizes: Vec<u64> = w
            .layers()
            .iter()
            .filter_map(|l| l.comm())
            .map(|c| c.bytes)
            .collect();
        assert_eq!(sizes.len(), 54);
        let max = *sizes.iter().max().unwrap();
        assert!(
            max < 10 << 20,
            "largest AR {max} should be well under 10 MB"
        );
    }

    #[test]
    fn all_kernels_are_memory_bound_at_full_resources() {
        let w = build(32);
        for l in w.layers() {
            assert!(
                l.fwd().intensity() <= MAX_INTENSITY + 1e-6,
                "{} intensity {}",
                l.name(),
                l.fwd().intensity()
            );
        }
    }

    #[test]
    fn flops_scale_with_batch() {
        let a = build(32).total_flops();
        let b = build(64).total_flops();
        assert!((b / a - 2.0).abs() < 0.05);
    }
}
