//! Layers: the unit of workload description.

use ace_collectives::CollectiveOp;
use ace_compute::KernelDesc;

/// Bytes per element: all workloads use FP16 activations/gradients
/// (Section V).
pub(crate) const FP16: f64 = 2.0;

/// The collective a layer emits during back-propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerComm {
    /// The collective operation.
    pub op: CollectiveOp,
    /// Per-node payload in bytes.
    pub bytes: u64,
}

/// One network layer with its three training-pass kernels and its
/// backward-pass collective.
#[derive(Debug, Clone)]
pub struct Layer {
    name: String,
    fwd: KernelDesc,
    input_grad: KernelDesc,
    weight_grad: KernelDesc,
    comm: Option<LayerComm>,
}

impl Layer {
    /// Creates a layer.
    pub fn new(
        name: impl Into<String>,
        fwd: KernelDesc,
        input_grad: KernelDesc,
        weight_grad: KernelDesc,
        comm: Option<LayerComm>,
    ) -> Layer {
        Layer {
            name: name.into(),
            fwd,
            input_grad,
            weight_grad,
            comm,
        }
    }

    /// Builds a dense/conv-style layer from aggregate figures: forward
    /// flops and bytes, parameter count. The backward kernels follow the
    /// usual convention: the input-gradient and weight-gradient passes
    /// each cost about the same as the forward pass.
    ///
    /// `comm` attaches the back-prop collective (usually the FP16 weight
    /// gradients: `params × 2` bytes all-reduce).
    pub fn from_fwd(
        name: impl Into<String>,
        fwd_flops: f64,
        fwd_bytes: f64,
        comm: Option<LayerComm>,
    ) -> Layer {
        let name = name.into();
        let fwd = KernelDesc::new(format!("{name}.fwd"), fwd_flops, fwd_bytes);
        let ig = KernelDesc::new(format!("{name}.ig"), fwd_flops, fwd_bytes);
        let wg = KernelDesc::new(format!("{name}.wg"), fwd_flops, fwd_bytes);
        Layer::new(name, fwd, ig, wg, comm)
    }

    /// The layer's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Forward-pass kernel.
    pub fn fwd(&self) -> &KernelDesc {
        &self.fwd
    }

    /// Input-gradient kernel (skipped for the first layer in practice; we
    /// keep it for uniformity, it is part of "total compute" either way).
    pub fn input_grad(&self) -> &KernelDesc {
        &self.input_grad
    }

    /// Weight-gradient kernel.
    pub fn weight_grad(&self) -> &KernelDesc {
        &self.weight_grad
    }

    /// The backward-pass collective, if any.
    pub fn comm(&self) -> Option<LayerComm> {
        self.comm
    }
}

/// Helper: FP16 bytes for `params` parameters.
pub(crate) fn grad_bytes(params: f64) -> u64 {
    (params * FP16) as u64
}

/// Helper: memory bytes for a kernel calibrated to the memory-bound
/// regime: raw tensor traffic, floored so arithmetic intensity stays at or
/// below `max_intensity` flops/byte (the NPU ridge point is ≈133 at full
/// resources; we use 110 to keep a clear margin, matching the paper's
/// bandwidth-sensitive compute times).
pub(crate) fn calibrated_bytes(flops: f64, raw_bytes: f64, max_intensity: f64) -> f64 {
    raw_bytes.max(flops / max_intensity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fwd_builds_three_kernels() {
        let l = Layer::from_fwd("conv1", 1e9, 1e7, None);
        assert_eq!(l.fwd().flops(), 1e9);
        assert_eq!(l.input_grad().flops(), 1e9);
        assert_eq!(l.weight_grad().flops(), 1e9);
        assert!(l.comm().is_none());
        assert_eq!(l.name(), "conv1");
        assert!(l.fwd().name().contains("fwd"));
    }

    #[test]
    fn grad_bytes_is_two_per_param() {
        assert_eq!(grad_bytes(1000.0), 2000);
    }

    #[test]
    fn calibration_floors_bytes() {
        // High-intensity kernel gets extra bytes to stay memory-bound.
        let b = calibrated_bytes(1.1e9, 1e6, 110.0);
        assert_eq!(b, 1e7);
        // Already memory-bound kernels keep raw bytes.
        let b = calibrated_bytes(1e6, 1e9, 110.0);
        assert_eq!(b, 1e9);
    }

    #[test]
    fn layer_comm_carries_payload() {
        let c = LayerComm {
            op: ace_collectives::CollectiveOp::AllReduce,
            bytes: 4096,
        };
        let l = Layer::from_fwd("fc", 1e6, 1e6, Some(c));
        assert_eq!(l.comm().unwrap().bytes, 4096);
    }
}
