//! Straggler distributions on Program IR compute tasks.
//!
//! Real accelerators do not run their kernels at exactly the roofline
//! estimate: thermal throttling, HBM refresh interference, and host
//! jitter stretch individual kernels. A [`StragglerSpec`] applies a
//! deterministic, seeded per-task compute multiplier to a
//! [`Program`](crate::Program), so both the exact and analytic tiers see
//! the same stretched graph — the transform happens once on the IR, not
//! inside either engine.
//!
//! Spellings: `det` (every multiplier exactly 1 — the default), or
//! `lognormal:SIGMA[@seed:S]` — multipliers drawn from a lognormal with
//! `μ = 0` and the given `σ` (median 1, mean `exp(σ²/2)`), the standard
//! heavy-tailed straggler model. The draw for a task depends only on the
//! seed and the task's id, so the same spec stretches the same program
//! identically regardless of thread count or schedule order.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;

use ace_toml::{Spelling, SpellingError};

/// SplitMix64 step — same constants as the fault and serving layers'
/// private copies.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A per-task compute-time multiplier distribution.
#[derive(Debug, Clone, Copy, Default)]
pub enum StragglerSpec {
    /// Deterministic roofline compute: every multiplier is 1.
    #[default]
    Det,
    /// Lognormal multipliers (`μ = 0`): median 1, heavier tail with
    /// larger `sigma`.
    Lognormal {
        /// The distribution's σ (must be positive and finite).
        sigma: f64,
        /// Seed of the per-task draws.
        seed: u64,
    },
}

impl StragglerSpec {
    /// Whether this spec changes nothing.
    pub fn is_det(&self) -> bool {
        matches!(self, StragglerSpec::Det)
    }

    /// The compute multiplier for the task with id `task` (≥ some tiny
    /// positive value; exactly 1 for `det`).
    pub fn multiplier(&self, task: usize) -> f64 {
        match *self {
            StragglerSpec::Det => 1.0,
            StragglerSpec::Lognormal { sigma, seed } => {
                // Two independent uniforms from a per-task stream, then
                // Box–Muller. Offsetting by the task id (finalized by
                // splitmix64) makes the draw schedule-order independent.
                let mut state = seed ^ (task as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let u1 = ((splitmix64(&mut state) >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
                let u2 = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
                let normal = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (sigma * normal).exp()
            }
        }
    }
}

impl PartialEq for StragglerSpec {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (StragglerSpec::Det, StragglerSpec::Det) => true,
            (
                StragglerSpec::Lognormal { sigma: a, seed: s1 },
                StragglerSpec::Lognormal { sigma: b, seed: s2 },
            ) => a.to_bits() == b.to_bits() && s1 == s2,
            _ => false,
        }
    }
}

impl Eq for StragglerSpec {}

impl Hash for StragglerSpec {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            StragglerSpec::Det => 0u8.hash(state),
            StragglerSpec::Lognormal { sigma, seed } => {
                1u8.hash(state);
                sigma.to_bits().hash(state);
                seed.hash(state);
            }
        }
    }
}

impl fmt::Display for StragglerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StragglerSpec::Det => f.write_str("det"),
            StragglerSpec::Lognormal { sigma, seed } => {
                write!(f, "lognormal:{sigma}@seed:{seed}")
            }
        }
    }
}

impl Spelling for StragglerSpec {
    const WHAT: &'static str = "straggler spec";

    fn keywords() -> &'static [&'static str] {
        &["det", "lognormal"]
    }

    fn spellings() -> &'static str {
        "det or lognormal:SIGMA[@seed:S]"
    }

    fn parse_spelling(s: &str) -> Result<StragglerSpec, SpellingError> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("det") || s.eq_ignore_ascii_case("none") || s.is_empty() {
            return Ok(StragglerSpec::Det);
        }
        if let Some(body) = s.strip_prefix("lognormal:") {
            let (sigma_s, seed) = match body.split_once('@') {
                None => (body, 1u64),
                Some((sg, sd)) => {
                    let sd = sd.strip_prefix("seed:").ok_or_else(|| {
                        SpellingError::invalid(format!(
                            "expected @seed:S after straggler sigma, got '@{sd}'"
                        ))
                    })?;
                    let seed: u64 = sd.trim().parse().map_err(|_| {
                        SpellingError::invalid(format!("bad straggler seed '{sd}'"))
                    })?;
                    (sg, seed)
                }
            };
            let sigma: f64 = sigma_s
                .trim()
                .parse()
                .map_err(|_| SpellingError::invalid(format!("bad straggler sigma '{sigma_s}'")))?;
            if !(sigma.is_finite() && sigma > 0.0) {
                return Err(SpellingError::invalid(format!(
                    "straggler sigma must be positive and finite, got {sigma} \
                     (use det for no stragglers)"
                )));
            }
            return Ok(StragglerSpec::Lognormal { sigma, seed });
        }
        Err(SpellingError::Unknown)
    }
}

impl FromStr for StragglerSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<StragglerSpec, String> {
        StragglerSpec::from_spelling(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spellings_round_trip() {
        for (input, canonical) in [
            ("det", "det"),
            ("none", "det"),
            ("lognormal:0.3", "lognormal:0.3@seed:1"),
            ("lognormal:0.25@seed:7", "lognormal:0.25@seed:7"),
        ] {
            let spec: StragglerSpec = input.parse().unwrap();
            assert_eq!(spec.to_string(), canonical, "canonical form of '{input}'");
            let back: StragglerSpec = spec.to_string().parse().unwrap();
            assert_eq!(back, spec);
        }
        let e = "lognorml:0.3".parse::<StragglerSpec>().unwrap_err();
        assert!(e.contains("did you mean 'lognormal'?"), "{e}");
        assert!("lognormal:0".parse::<StragglerSpec>().is_err());
        assert!("lognormal:-1".parse::<StragglerSpec>().is_err());
    }

    #[test]
    fn multipliers_are_deterministic_and_median_one() {
        let spec: StragglerSpec = "lognormal:0.3@seed:9".parse().unwrap();
        let again: StragglerSpec = "lognormal:0.3@seed:9".parse().unwrap();
        let mut above = 0usize;
        for task in 0..10_000 {
            let m = spec.multiplier(task);
            assert_eq!(m, again.multiplier(task), "task {task} draw must repeat");
            assert!(m > 0.0 && m.is_finite());
            if m > 1.0 {
                above += 1;
            }
        }
        // Lognormal(0, σ) has median 1: about half the draws stretch.
        assert!((4_000..6_000).contains(&above), "{above} of 10000 above 1");
        // A different seed gives a different stream.
        let other: StragglerSpec = "lognormal:0.3@seed:10".parse().unwrap();
        assert_ne!(spec.multiplier(0), other.multiplier(0));
        // det is exactly 1 everywhere.
        assert_eq!(StragglerSpec::Det.multiplier(123), 1.0);
    }
}
