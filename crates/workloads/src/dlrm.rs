//! DLRM layer table (Naumov et al. [41], HOTI'20 case study [47]),
//! mini-batch 512 per NPU, hybrid parallel.
//!
//! Production-class configuration: a 256-feature bottom MLP
//! (256-2048-2048-1024), feature interaction, a top MLP
//! (2048-4096-4096-1), and 128 model-parallel embedding tables of
//! dimension 128. MLP weight gradients are all-reduced (data parallel);
//! pooled embedding vectors are exchanged with a forward all-to-all before
//! the top MLP and a backward all-to-all returns their gradients
//! (Section V: "hybrid parallel (data-parallel across MLP layers, model
//! parallel across embedding tables)").
//!
//! With weak scaling the per-node all-to-all payload is constant: each
//! node owns `tables / N` tables and serves the global batch `512 · N`,
//! so `512·N × (tables/N) × dim × 2 B` is independent of `N`.

use ace_collectives::CollectiveOp;
use ace_compute::KernelDesc;

use crate::layer::{calibrated_bytes, grad_bytes, Layer, LayerComm, FP16};
use crate::workload::{EmbeddingStage, Workload};

const MAX_INTENSITY: f64 = 110.0;
/// Total embedding tables across the platform (scales with very large
/// fabrics so each node keeps at least one table).
const BASE_TABLES: f64 = 128.0;
/// Embedding vector dimension.
const EMB_DIM: f64 = 128.0;
/// Average table rows gathered per sample per table (multi-hot pooling;
/// the paper's Fig. 4 embedding benchmark uses 28 look-ups per sample,
/// production models pool tens of rows — we use 16 so the background
/// lookup of the optimized loop fits inside one iteration at 80 GB/s).
const POOLING: f64 = 16.0;

fn mlp_layer(name: &str, cin: f64, cout: f64, batch: f64) -> Layer {
    let params = cin * cout + cout;
    let fwd_flops = 2.0 * params * batch;
    let raw = (params + (cin + cout) * batch) * FP16;
    Layer::from_fwd(
        name,
        fwd_flops,
        calibrated_bytes(fwd_flops, raw, MAX_INTENSITY),
        Some(LayerComm {
            op: CollectiveOp::AllReduce,
            bytes: grad_bytes(params),
        }),
    )
}

/// Builds DLRM for `batch` samples per NPU on an `nodes`-NPU fabric.
pub(crate) fn build(batch: u32, nodes: usize) -> Workload {
    assert!(nodes >= 1, "need at least one node");
    let b = batch as f64;
    let n = nodes as f64;
    let tables = BASE_TABLES.max(n);

    // Bottom MLP: 256-2048-2048-1024 (layers 0..3).
    let mut layers = vec![
        mlp_layer("bot_mlp_0", 256.0, 2048.0, b),
        mlp_layer("bot_mlp_1", 2048.0, 2048.0, b),
        mlp_layer("bot_mlp_2", 2048.0, 1024.0, b),
    ];
    // Top MLP: 2048-4096-4096-1 (layers 3..6); the forward pass blocks on
    // the embedding all-to-all before layer index 3.
    let top_mlp_start = layers.len();
    layers.push(mlp_layer("top_mlp_0", 2048.0, 4096.0, b));
    layers.push(mlp_layer("top_mlp_1", 4096.0, 4096.0, b));
    layers.push(mlp_layer("top_mlp_2", 4096.0, 1.0, b));

    // Embedding stage: each node owns tables/n tables and serves the
    // global batch b*n. Output bytes per node are constant under weak
    // scaling; lookups read `POOLING` rows per output vector.
    let global_batch = b * n;
    let tables_per_node = tables / n;
    let out_bytes = global_batch * tables_per_node * EMB_DIM * FP16;
    let lookup = KernelDesc::new(
        "emb_lookup",
        global_batch * tables_per_node * EMB_DIM, // pooling adds
        (POOLING + 1.0) * out_bytes,
    );
    let update = KernelDesc::new(
        "emb_update",
        global_batch * tables_per_node * EMB_DIM,
        (POOLING + 1.0) * out_bytes,
    );

    let embedding = EmbeddingStage {
        lookup,
        update,
        fwd_all_to_all_bytes: out_bytes as u64,
        bwd_all_to_all_bytes: out_bytes as u64,
        top_mlp_start,
    };

    Workload::hybrid_parallel("DLRM", layers, batch, embedding)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_is_bottom_plus_top() {
        let w = build(512, 16);
        assert_eq!(w.layers().len(), 6);
        assert_eq!(w.embedding().unwrap().top_mlp_start, 3);
    }

    #[test]
    fn all_to_all_payload_is_weak_scaling_invariant() {
        let small = build(512, 16);
        let large = build(512, 128);
        assert_eq!(
            small.embedding().unwrap().fwd_all_to_all_bytes,
            large.embedding().unwrap().fwd_all_to_all_bytes
        );
        // 512·N × (128/N) × 128 × 2 = 16.78 MB.
        let bytes = small.embedding().unwrap().fwd_all_to_all_bytes;
        assert_eq!(bytes, (512.0 * 128.0 * 128.0 * 2.0) as u64);
    }

    #[test]
    fn very_large_fabrics_keep_one_table_per_node() {
        let w = build(512, 256);
        // tables = max(128, 256) = 256 => payload scales accordingly but
        // stays positive.
        assert!(w.embedding().unwrap().fwd_all_to_all_bytes > 0);
    }

    #[test]
    fn mlp_all_reduce_dominates_all_to_all() {
        // Section VI-A: "compared to the all-reduce, all-to-all ... sizes
        // are usually smaller".
        let w = build(512, 64);
        let ar_total = w.total_comm_bytes();
        let a2a = w.embedding().unwrap().fwd_all_to_all_bytes;
        assert!(ar_total > a2a, "AR {ar_total} vs A2A {a2a}");
    }

    #[test]
    fn mlp_params_are_production_scale() {
        let w = build(512, 16);
        let params: f64 = w
            .layers()
            .iter()
            .filter_map(|l| l.comm())
            .map(|c| c.bytes as f64 / FP16)
            .sum();
        // bottom 6.8M + top 25.2M ≈ 32M.
        assert!((28.0e6..36.0e6).contains(&params), "params {params:.3e}");
    }

    #[test]
    fn embedding_kernels_are_memory_dominated() {
        let w = build(512, 64);
        let e = w.embedding().unwrap();
        assert!(e.lookup.intensity() < 1.0);
        assert!(e.update.intensity() < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = build(512, 0);
    }
}
