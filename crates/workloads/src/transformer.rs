//! Transformer-LM (Megatron-LM-style [54]) — an extension workload.
//!
//! The paper uses Megatron-LM in its Section III motivation (overlapping
//! communication degrades it ≈1.4×) but does not include it in the main
//! evaluation; we provide it as a fourth workload so the motivation
//! experiment can be rerun on the simulator. A GPT-2-class configuration:
//! 24 layers, hidden 1024, 16 heads, data-parallel — each layer all-reduces
//! its ≈12.6 M parameters (attention QKV/proj + 4x MLP) during back-prop,
//! giving few very large collectives, an even heavier regime than GNMT.

use ace_collectives::CollectiveOp;

use crate::layer::{calibrated_bytes, grad_bytes, Layer, LayerComm, FP16};
use crate::workload::Workload;

const MAX_INTENSITY: f64 = 100.0;
/// Compute-time calibration (see the ResNet-50 module for the rationale).
const COMPUTE_TIME_SCALE: f64 = 0.5;
const HIDDEN: f64 = 1024.0;
const LAYERS: usize = 24;
const SEQ: f64 = 64.0;
const VOCAB: f64 = 32_000.0;

fn transformer_layer(name: String, batch: f64) -> Layer {
    // Attention: QKV (3 h x h) + output projection (h x h); MLP: h -> 4h -> h.
    let attn_params = 4.0 * HIDDEN * HIDDEN;
    let mlp_params = 8.0 * HIDDEN * HIDDEN;
    let params = attn_params + mlp_params;
    // Matmuls plus the seq^2 attention score/context products.
    let fwd_flops =
        (2.0 * params * SEQ * batch + 4.0 * SEQ * SEQ * HIDDEN * batch) * COMPUTE_TIME_SCALE;
    let raw = (params + 4.0 * SEQ * batch * HIDDEN) * FP16 * COMPUTE_TIME_SCALE;
    Layer::from_fwd(
        name,
        fwd_flops,
        calibrated_bytes(fwd_flops, raw, MAX_INTENSITY),
        Some(LayerComm {
            op: CollectiveOp::AllReduce,
            bytes: grad_bytes(params),
        }),
    )
}

/// Builds the Transformer-LM for `batch` sequences per NPU.
pub(crate) fn build(batch: u32) -> Workload {
    let b = batch as f64;
    let mut layers = Vec::with_capacity(LAYERS + 2);

    // Token + position embedding (sparse gradients: no dense all-reduce).
    let emb_flops = 2.0 * HIDDEN * SEQ * b * COMPUTE_TIME_SCALE;
    let emb_raw = (SEQ * b * HIDDEN * 2.0 + VOCAB * HIDDEN * 0.01) * FP16 * COMPUTE_TIME_SCALE;
    layers.push(Layer::from_fwd(
        "embedding",
        emb_flops,
        calibrated_bytes(emb_flops, emb_raw, MAX_INTENSITY),
        None,
    ));

    for i in 0..LAYERS {
        layers.push(transformer_layer(format!("block_{i}"), b));
    }

    // LM head (tied to the embedding).
    let head_flops = 2.0 * HIDDEN * VOCAB * SEQ * b * COMPUTE_TIME_SCALE;
    let head_raw = (VOCAB * HIDDEN + SEQ * b * VOCAB) * FP16 * COMPUTE_TIME_SCALE;
    layers.push(Layer::from_fwd(
        "lm_head",
        head_flops,
        calibrated_bytes(head_flops, head_raw, MAX_INTENSITY),
        None,
    ));

    Workload::data_parallel("Transformer-LM", layers, batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_is_blocks_plus_embedding_and_head() {
        let w = build(16);
        assert_eq!(w.layers().len(), LAYERS + 2);
        assert_eq!(w.name(), "Transformer-LM");
    }

    #[test]
    fn per_layer_collectives_are_the_largest_of_all_workloads() {
        let t = build(16);
        let gnmt = crate::gnmt::build(128);
        let t_max = t
            .layers()
            .iter()
            .filter_map(|l| l.comm())
            .map(|c| c.bytes)
            .max()
            .unwrap();
        let g_max = gnmt
            .layers()
            .iter()
            .filter_map(|l| l.comm())
            .map(|c| c.bytes)
            .max()
            .unwrap();
        // 12.58M params ≈ 25.2 MB FP16 per block vs GNMT's 16.8 MB LSTMs.
        assert!(t_max > g_max, "{t_max} vs {g_max}");
    }

    #[test]
    fn total_params_are_gpt2_medium_scale() {
        let w = build(16);
        let params: f64 = w
            .layers()
            .iter()
            .filter_map(|l| l.comm())
            .map(|c| c.bytes as f64 / FP16)
            .sum();
        // 24 x 12.58M ≈ 302M dense-gradient params.
        assert!((280.0e6..330.0e6).contains(&params), "params {params:.3e}");
    }

    #[test]
    fn memory_bound_calibration_holds() {
        for l in build(16).layers() {
            assert!(l.fwd().intensity() <= MAX_INTENSITY + 1e-6, "{}", l.name());
        }
    }
}
