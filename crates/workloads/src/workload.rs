//! The workload container and parallelization strategy.

use std::fmt;

use ace_compute::KernelDesc;

use crate::layer::Layer;

/// The per-stage execution order of a pipeline-parallel schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipeSchedule {
    /// GPipe: every stage runs all forward microbatches, then all
    /// backward microbatches (maximal activation memory, simple order).
    GPipe,
    /// 1F1B: each stage warms up with `stages - 1 - s` forwards, then
    /// alternates one-forward-one-backward, then drains the remaining
    /// backwards — the Megatron/PipeDream steady state.
    OneFOneB,
}

impl PipeSchedule {
    /// Spec-file name of the schedule.
    pub fn name(self) -> &'static str {
        match self {
            PipeSchedule::GPipe => "gpipe",
            PipeSchedule::OneFOneB => "1f1b",
        }
    }
}

impl fmt::Display for PipeSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl ace_toml::Spelling for PipeSchedule {
    const WHAT: &'static str = "pipeline schedule";

    fn keywords() -> &'static [&'static str] {
        &["gpipe", "1f1b"]
    }

    fn spellings() -> &'static str {
        "gpipe or 1f1b"
    }

    fn parse_spelling(s: &str) -> Result<Self, ace_toml::SpellingError> {
        match s.trim().to_ascii_lowercase().as_str() {
            "gpipe" => Ok(PipeSchedule::GPipe),
            "1f1b" | "onefoneb" => Ok(PipeSchedule::OneFOneB),
            _ => Err(ace_toml::SpellingError::Unknown),
        }
    }
}

impl std::str::FromStr for PipeSchedule {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        use ace_toml::Spelling;
        PipeSchedule::from_spelling(s)
    }
}

/// How the model is split across NPUs (Section II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Parallelism {
    /// Model replicated; weight gradients all-reduced (ResNet-50, GNMT).
    Data,
    /// Data-parallel MLPs + model-parallel embedding tables exchanged via
    /// all-to-all (DLRM).
    Hybrid,
    /// Megatron-style tensor parallelism (the paper's Section III
    /// motivation): every layer all-reduces activations in the forward
    /// pass and input gradients in the backward pass, both blocking; no
    /// weight-gradient collectives (weights are sharded).
    Model,
    /// Pipeline parallelism: contiguous layer groups on consecutive
    /// fabric positions, microbatched, with stage-boundary point-to-point
    /// activation/gradient transfers and no weight-gradient collectives.
    Pipeline {
        /// Pipeline depth (contiguous layer groups).
        stages: u32,
        /// Microbatches per iteration (the mini-batch is split evenly).
        microbatches: u32,
        /// Per-stage execution order.
        schedule: PipeSchedule,
    },
}

/// Default pipeline depth for the bare `pipeline@<schedule>` spelling.
pub const DEFAULT_PIPELINE_STAGES: u32 = 4;
/// Default microbatch count for the bare `pipeline@<schedule>` spelling.
pub const DEFAULT_PIPELINE_MICROBATCHES: u32 = 8;

impl Parallelism {
    /// A pipeline strategy with the default depth/microbatch geometry.
    pub fn pipeline(schedule: PipeSchedule) -> Parallelism {
        Parallelism::Pipeline {
            stages: DEFAULT_PIPELINE_STAGES,
            microbatches: DEFAULT_PIPELINE_MICROBATCHES,
            schedule,
        }
    }

    /// Spec-file name of the strategy. Pipeline strategies spell their
    /// full geometry (`pipeline@gpipe@4x8`) so the name round-trips
    /// through [`std::str::FromStr`] and is a stable cache-key token.
    pub fn name(self) -> String {
        match self {
            Parallelism::Data => "data".into(),
            Parallelism::Hybrid => "hybrid".into(),
            Parallelism::Model => "model".into(),
            Parallelism::Pipeline {
                stages,
                microbatches,
                schedule,
            } => format!("pipeline@{}@{stages}x{microbatches}", schedule.name()),
        }
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Parallelism::Data => f.write_str("data-parallel"),
            Parallelism::Hybrid => f.write_str("hybrid-parallel"),
            Parallelism::Model => f.write_str("model-parallel"),
            Parallelism::Pipeline {
                stages,
                microbatches,
                schedule,
            } => write!(
                f,
                "pipeline-parallel ({}, {stages} stages, {microbatches} microbatches)",
                schedule.name()
            ),
        }
    }
}

impl ace_toml::Spelling for Parallelism {
    const WHAT: &'static str = "parallelism";

    fn keywords() -> &'static [&'static str] {
        &["data", "hybrid", "model", "pipeline@gpipe", "pipeline@1f1b"]
    }

    fn spellings() -> &'static str {
        "data, hybrid, model, pipeline@gpipe, or pipeline@1f1b"
    }

    /// Parses the spec-file spelling (`data`, `hybrid`, `model`;
    /// `tensor` is accepted as a Megatron-familiar alias of `model`).
    /// Pipeline strategies spell `pipeline@gpipe` / `pipeline@1f1b`,
    /// optionally with an explicit geometry suffix
    /// (`pipeline@1f1b@4x8` = 4 stages × 8 microbatches).
    fn parse_spelling(s: &str) -> Result<Self, ace_toml::SpellingError> {
        use ace_toml::SpellingError;
        let lower = s.trim().to_ascii_lowercase();
        if let Some(rest) = lower.strip_prefix("pipeline@") {
            let (sched, geometry) = match rest.split_once('@') {
                None => (rest, None),
                Some((sched, geom)) => (sched, Some(geom)),
            };
            let schedule = sched
                .parse::<PipeSchedule>()
                .map_err(SpellingError::Invalid)?;
            let (stages, microbatches) = match geometry {
                None => (DEFAULT_PIPELINE_STAGES, DEFAULT_PIPELINE_MICROBATCHES),
                Some(geom) => {
                    let (st, mb) = geom.split_once('x').ok_or_else(|| {
                        SpellingError::invalid(format!(
                            "bad pipeline geometry '{geom}' (expected \
                             '<stages>x<microbatches>', e.g. '4x8')"
                        ))
                    })?;
                    let stages = st.parse::<u32>().map_err(|_| {
                        SpellingError::invalid(format!("bad pipeline stage count '{st}'"))
                    })?;
                    let microbatches = mb.parse::<u32>().map_err(|_| {
                        SpellingError::invalid(format!("bad microbatch count '{mb}'"))
                    })?;
                    (stages, microbatches)
                }
            };
            if stages < 2 {
                return Err(SpellingError::invalid(format!(
                    "a pipeline needs at least 2 stages, got {stages}"
                )));
            }
            if microbatches == 0 {
                return Err(SpellingError::invalid(
                    "a pipeline needs at least 1 microbatch".to_string(),
                ));
            }
            return Ok(Parallelism::Pipeline {
                stages,
                microbatches,
                schedule,
            });
        }
        match lower.as_str() {
            "data" => Ok(Parallelism::Data),
            "hybrid" => Ok(Parallelism::Hybrid),
            "model" | "tensor" => Ok(Parallelism::Model),
            _ => Err(SpellingError::Unknown),
        }
    }
}

impl std::str::FromStr for Parallelism {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        use ace_toml::Spelling;
        Parallelism::from_spelling(s)
    }
}

/// DLRM's embedding pipeline stage: lookup/update kernels and the
/// all-to-all payloads they produce (Section V, VI-D).
#[derive(Debug, Clone)]
pub struct EmbeddingStage {
    /// Embedding lookup kernel (forward, memory-dominated).
    pub lookup: KernelDesc,
    /// Embedding update kernel (backward, memory-dominated).
    pub update: KernelDesc,
    /// Per-node forward all-to-all payload (bytes): pooled embedding
    /// vectors exchanged before the top MLP.
    pub fwd_all_to_all_bytes: u64,
    /// Per-node backward all-to-all payload (bytes): embedding gradients
    /// returned to their owner tables.
    pub bwd_all_to_all_bytes: u64,
    /// Index of the first top-MLP layer: the forward pass blocks on the
    /// all-to-all before entering this layer.
    pub top_mlp_start: usize,
}

/// A training workload: layers plus parallelization metadata.
#[derive(Debug, Clone)]
pub struct Workload {
    name: String,
    layers: Vec<Layer>,
    parallelism: Parallelism,
    batch_per_npu: u32,
    embedding: Option<EmbeddingStage>,
}

impl Workload {
    /// Creates a data-parallel workload.
    pub fn data_parallel(
        name: impl Into<String>,
        layers: Vec<Layer>,
        batch_per_npu: u32,
    ) -> Workload {
        Workload {
            name: name.into(),
            layers,
            parallelism: Parallelism::Data,
            batch_per_npu,
            embedding: None,
        }
    }

    /// Creates a hybrid-parallel workload with an embedding stage.
    pub fn hybrid_parallel(
        name: impl Into<String>,
        layers: Vec<Layer>,
        batch_per_npu: u32,
        embedding: EmbeddingStage,
    ) -> Workload {
        Workload {
            name: name.into(),
            layers,
            parallelism: Parallelism::Hybrid,
            batch_per_npu,
            embedding: Some(embedding),
        }
    }

    /// ResNet-50 v1.5 for vision, mini-batch 32 per NPU (Section V).
    pub fn resnet50() -> Workload {
        crate::resnet::build(32)
    }

    /// GNMT (8-layer encoder/decoder LSTM) for NLP, mini-batch 128.
    pub fn gnmt() -> Workload {
        crate::gnmt::build(128)
    }

    /// DLRM recommendation model, mini-batch 512, hybrid parallel. The
    /// all-to-all payloads depend on the node count (model-parallel tables),
    /// so the fabric size is a parameter.
    pub fn dlrm(nodes: usize) -> Workload {
        crate::dlrm::build(512, nodes)
    }

    /// Transformer-LM (Megatron-LM-style), mini-batch 16 sequences per
    /// NPU — the paper's Section III motivation workload, provided as an
    /// extension beyond the evaluated trio.
    pub fn transformer_lm() -> Workload {
        crate::transformer::build(16)
    }

    /// The paper's three workloads for a given fabric size.
    pub fn paper_suite(nodes: usize) -> Vec<Workload> {
        vec![
            Workload::resnet50(),
            Workload::gnmt(),
            Workload::dlrm(nodes),
        ]
    }

    /// Re-parallelizes the workload: the same layer table trained under
    /// a different strategy (e.g. the Transformer-LM under Megatron-style
    /// [`Parallelism::Model`]). An embedding stage, when present, keeps
    /// its all-to-all pipeline under any strategy.
    ///
    /// # Errors
    ///
    /// [`Parallelism::Hybrid`] requires an embedding stage.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Result<Workload, String> {
        if parallelism == Parallelism::Hybrid && self.embedding.is_none() {
            return Err(format!(
                "workload '{}' has no embedding stage; hybrid parallelism needs one",
                self.name
            ));
        }
        if let Parallelism::Pipeline { stages, .. } = parallelism {
            if (stages as usize) > self.layers.len() {
                return Err(format!(
                    "workload '{}' has {} layers; cannot split into {stages} \
                     pipeline stages",
                    self.name,
                    self.layers.len()
                ));
            }
        }
        self.parallelism = parallelism;
        Ok(self)
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers in forward order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Parallelization strategy.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Mini-batch per NPU (weak scaling).
    pub fn batch_per_npu(&self) -> u32 {
        self.batch_per_npu
    }

    /// DLRM's embedding stage, if any.
    pub fn embedding(&self) -> Option<&EmbeddingStage> {
        self.embedding.as_ref()
    }

    /// Total per-node bytes of layer collectives per iteration (excludes
    /// the embedding all-to-alls).
    pub fn total_comm_bytes(&self) -> u64 {
        self.layers
            .iter()
            .filter_map(|l| l.comm())
            .map(|c| c.bytes)
            .sum()
    }

    /// Total flops of one iteration (fwd + input-grad + weight-grad, plus
    /// embedding kernels).
    pub fn total_flops(&self) -> f64 {
        let layers: f64 = self
            .layers
            .iter()
            .map(|l| l.fwd().flops() + l.input_grad().flops() + l.weight_grad().flops())
            .sum();
        let emb = self
            .embedding
            .as_ref()
            .map(|e| e.lookup.flops() + e.update.flops())
            .unwrap_or(0.0);
        layers + emb
    }

    /// Total memory bytes of one iteration's compute kernels.
    pub fn total_mem_bytes(&self) -> f64 {
        let layers: f64 = self
            .layers
            .iter()
            .map(|l| l.fwd().mem_bytes() + l.input_grad().mem_bytes() + l.weight_grad().mem_bytes())
            .sum();
        let emb = self
            .embedding
            .as_ref()
            .map(|e| e.lookup.mem_bytes() + e.update.mem_bytes())
            .unwrap_or(0.0);
        layers + emb
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} layers, batch {}/NPU)",
            self.name,
            self.parallelism,
            self.layers.len(),
            self.batch_per_npu
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_contains_three_workloads() {
        let suite = Workload::paper_suite(16);
        let names: Vec<&str> = suite.iter().map(|w| w.name()).collect();
        assert_eq!(names, vec!["ResNet-50", "GNMT", "DLRM"]);
    }

    #[test]
    fn batch_sizes_match_section_v() {
        assert_eq!(Workload::resnet50().batch_per_npu(), 32);
        assert_eq!(Workload::gnmt().batch_per_npu(), 128);
        assert_eq!(Workload::dlrm(16).batch_per_npu(), 512);
    }

    #[test]
    fn parallelism_kinds() {
        assert_eq!(Workload::resnet50().parallelism(), Parallelism::Data);
        assert_eq!(Workload::gnmt().parallelism(), Parallelism::Data);
        assert_eq!(Workload::dlrm(16).parallelism(), Parallelism::Hybrid);
        assert!(Workload::dlrm(16).embedding().is_some());
        assert!(Workload::resnet50().embedding().is_none());
    }

    #[test]
    fn totals_are_positive() {
        for w in Workload::paper_suite(64) {
            assert!(w.total_flops() > 0.0, "{}", w.name());
            assert!(w.total_mem_bytes() > 0.0);
            assert!(w.total_comm_bytes() > 0);
        }
    }

    #[test]
    fn display_mentions_strategy() {
        let s = Workload::dlrm(16).to_string();
        assert!(s.contains("hybrid"));
    }
}
