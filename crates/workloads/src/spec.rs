//! Declarative, TOML-loadable workload specifications.
//!
//! A [`WorkloadSpec`] describes a training model as *data* — layer
//! shapes, collectives, parallelization strategy, optionally a DLRM-style
//! embedding stage — and instantiates into a [`Workload`] that lowers
//! onto the task-graph IR like any builtin. New models need a TOML file,
//! not new Rust code:
//!
//! ```toml
//! name = "wide-mlp"
//! parallelism = "data"        # data | model | hybrid
//! batch_per_npu = 32
//!
//! [[layer]]
//! name = "fc"
//! repeat = 4                  # expands into fc_0 .. fc_3
//! fwd_flops = 1.0e9           # forward-pass flops
//! fwd_bytes = 6.4e7           # forward-pass HBM bytes
//! comm = "all-reduce"         # back-prop collective (omit for none)
//! comm_bytes = "8MB"          # per-node payload
//! ```
//!
//! The backward kernels follow the builtin convention: input-gradient
//! and weight-gradient passes each cost the same as the forward pass
//! ([`Layer::from_fwd`]). Hybrid-parallel specs add an `[embedding]`
//! table (lookup/update kernels, the two all-to-all payloads, and the
//! index of the first top-MLP layer).
//!
//! [`BuiltinWorkload`] names the four models that ship with the
//! simulator; both parsers attach did-you-mean hints to unknown
//! spellings.

use std::collections::BTreeMap;

use ace_collectives::CollectiveOp;
use ace_compute::KernelDesc;
use ace_toml::{did_you_mean, parse_bytes, Value};

use crate::layer::{Layer, LayerComm};
use crate::workload::{EmbeddingStage, Parallelism, Workload};

/// The four workloads that ship with the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuiltinWorkload {
    /// ResNet-50 v1.5, mini-batch 32 per NPU.
    Resnet50,
    /// GNMT, mini-batch 128 per NPU.
    Gnmt,
    /// DLRM, mini-batch 512 per NPU, hybrid-parallel.
    Dlrm,
    /// Megatron-style Transformer-LM, mini-batch 16 per NPU.
    TransformerLm,
}

impl BuiltinWorkload {
    /// All builtins in paper order.
    pub const ALL: [BuiltinWorkload; 4] = [
        BuiltinWorkload::Resnet50,
        BuiltinWorkload::Gnmt,
        BuiltinWorkload::Dlrm,
        BuiltinWorkload::TransformerLm,
    ];

    /// Spec-file name of the workload.
    pub fn name(self) -> &'static str {
        match self {
            BuiltinWorkload::Resnet50 => "resnet50",
            BuiltinWorkload::Gnmt => "gnmt",
            BuiltinWorkload::Dlrm => "dlrm",
            BuiltinWorkload::TransformerLm => "transformer",
        }
    }

    /// Builds the concrete workload for a fabric of `nodes` NPUs (only
    /// DLRM's all-to-all payloads depend on the fabric size).
    pub fn instantiate(self, nodes: usize) -> Workload {
        match self {
            BuiltinWorkload::Resnet50 => Workload::resnet50(),
            BuiltinWorkload::Gnmt => Workload::gnmt(),
            BuiltinWorkload::Dlrm => Workload::dlrm(nodes),
            BuiltinWorkload::TransformerLm => Workload::transformer_lm(),
        }
    }
}

impl ace_toml::Spelling for BuiltinWorkload {
    const WHAT: &'static str = "workload";

    fn keywords() -> &'static [&'static str] {
        &["resnet50", "gnmt", "dlrm", "transformer"]
    }

    fn spellings() -> &'static str {
        "resnet50, gnmt, dlrm, transformer"
    }

    /// Accepts hyphen/underscore-tolerant spellings plus familiar
    /// aliases (`resnet`, `megatron`).
    fn parse_spelling(s: &str) -> Result<Self, ace_toml::SpellingError> {
        match s
            .trim()
            .to_ascii_lowercase()
            .replace(['-', '_'], "")
            .as_str()
        {
            "resnet50" | "resnet" => Ok(BuiltinWorkload::Resnet50),
            "gnmt" => Ok(BuiltinWorkload::Gnmt),
            "dlrm" => Ok(BuiltinWorkload::Dlrm),
            "transformer" | "transformerlm" | "megatron" => Ok(BuiltinWorkload::TransformerLm),
            _ => Err(ace_toml::SpellingError::Unknown),
        }
    }
}

impl std::str::FromStr for BuiltinWorkload {
    type Err = String;

    /// Parses a spec-file workload name via the shared
    /// [`ace_toml::Spelling`] trait; unknown names get a did-you-mean
    /// hint.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        use ace_toml::Spelling;
        BuiltinWorkload::from_spelling(s)
    }
}

/// One layer block of a [`WorkloadSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSpec {
    /// Layer name (expanded layers get `_<k>` suffixes).
    pub name: String,
    /// How many copies of the layer to instantiate.
    pub repeat: u32,
    /// Forward-pass flops per copy.
    pub fwd_flops: f64,
    /// Forward-pass HBM bytes per copy.
    pub fwd_bytes: f64,
    /// Back-propagation collective, if any.
    pub comm: Option<CollectiveOp>,
    /// Per-node payload of the collective, bytes.
    pub comm_bytes: u64,
}

/// The embedding stage of a hybrid-parallel [`WorkloadSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingSpec {
    /// Lookup kernel flops.
    pub lookup_flops: f64,
    /// Lookup kernel HBM bytes.
    pub lookup_bytes: f64,
    /// Update kernel flops.
    pub update_flops: f64,
    /// Update kernel HBM bytes.
    pub update_bytes: f64,
    /// Per-node forward all-to-all payload, bytes.
    pub fwd_all_to_all_bytes: u64,
    /// Per-node backward all-to-all payload, bytes.
    pub bwd_all_to_all_bytes: u64,
    /// Index (after `repeat` expansion) of the first top-MLP layer: the
    /// forward pass blocks on the all-to-all before entering it.
    pub top_mlp_start: usize,
}

/// A declarative workload: TOML in, [`Workload`] out.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Model name (used in reports).
    pub name: String,
    /// Parallelization strategy.
    pub parallelism: Parallelism,
    /// Mini-batch per NPU (weak scaling).
    pub batch_per_npu: u32,
    /// Layer blocks in forward order.
    pub layers: Vec<LayerSpec>,
    /// Embedding stage (required for hybrid parallelism).
    pub embedding: Option<EmbeddingSpec>,
}

impl WorkloadSpec {
    /// Parses a workload definition from TOML text. See the module docs
    /// for the format.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending key/value; misspelled keys
    /// get did-you-mean hints.
    pub fn from_toml_str(text: &str) -> Result<WorkloadSpec, String> {
        let doc = ace_toml::parse(text).map_err(|e| e.to_string())?;
        Self::from_toml(&doc)
    }

    fn from_toml(doc: &BTreeMap<String, Value>) -> Result<WorkloadSpec, String> {
        const KNOWN_KEYS: [&str; 5] =
            ["name", "parallelism", "batch_per_npu", "layer", "embedding"];
        for key in doc.keys() {
            if !KNOWN_KEYS.contains(&key.as_str()) {
                let hint = did_you_mean(key, &KNOWN_KEYS);
                return Err(format!(
                    "unknown key '{key}' (known keys: {}){hint}",
                    KNOWN_KEYS.join(", ")
                ));
            }
        }
        let name = doc
            .get("name")
            .ok_or("workload needs a 'name'")?
            .as_str()
            .ok_or("'name' must be a string")?
            .to_string();
        if name.is_empty() {
            return Err("'name' must not be empty".into());
        }
        let parallelism = match doc.get("parallelism") {
            None => Parallelism::Data,
            Some(v) => v
                .as_str()
                .ok_or("'parallelism' must be a string")?
                .parse::<Parallelism>()?,
        };
        let batch_per_npu =
            doc.get("batch_per_npu")
                .ok_or("workload needs 'batch_per_npu'")?
                .as_i64()
                .filter(|&b| b >= 1 && b <= i64::from(u32::MAX))
                .ok_or("'batch_per_npu' must be a positive integer")? as u32;
        let layer_blocks = doc
            .get("layer")
            .and_then(|v| v.as_array())
            .ok_or("workload needs at least one [[layer]] block")?;
        if layer_blocks.is_empty() {
            return Err("workload needs at least one [[layer]] block".into());
        }
        let layers: Vec<LayerSpec> = layer_blocks
            .iter()
            .enumerate()
            .map(|(i, block)| {
                let table = block
                    .as_table()
                    .ok_or_else(|| format!("layer[{i}] must be a [[layer]] table"))?;
                parse_layer(table, i).map_err(|e| format!("layer[{i}]: {e}"))
            })
            .collect::<Result<_, _>>()?;
        let embedding = match doc.get("embedding") {
            None => None,
            Some(v) => {
                let table = v.as_table().ok_or("[embedding] must be a table")?;
                Some(parse_embedding(table).map_err(|e| format!("[embedding]: {e}"))?)
            }
        };
        let spec = WorkloadSpec {
            name,
            parallelism,
            batch_per_npu,
            layers,
            embedding,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Checks internal consistency (also run by
    /// [`from_toml_str`](WorkloadSpec::from_toml_str)).
    pub fn validate(&self) -> Result<(), String> {
        if self.parallelism == Parallelism::Hybrid && self.embedding.is_none() {
            return Err("hybrid parallelism needs an [embedding] table".into());
        }
        let total: u64 = self.layers.iter().map(|l| u64::from(l.repeat)).sum();
        if total == 0 {
            return Err("workload needs at least one layer".into());
        }
        if let Some(emb) = &self.embedding {
            if emb.top_mlp_start as u64 >= total {
                return Err(format!(
                    "embedding top_mlp_start {} is out of range (the workload expands to \
                     {total} layers)",
                    emb.top_mlp_start
                ));
            }
        }
        Ok(())
    }

    /// The number of layers after `repeat` expansion.
    pub fn expanded_layers(&self) -> usize {
        self.layers.iter().map(|l| l.repeat as usize).sum()
    }

    /// Builds the concrete [`Workload`]. Custom specs carry explicit
    /// payloads, so unlike builtin DLRM the fabric size does not change
    /// them; `_nodes` is accepted for interface symmetry with
    /// [`BuiltinWorkload::instantiate`].
    pub fn instantiate(&self, _nodes: usize) -> Workload {
        let mut layers = Vec::with_capacity(self.expanded_layers());
        for spec in &self.layers {
            for k in 0..spec.repeat {
                let name = if spec.repeat > 1 {
                    format!("{}_{k}", spec.name)
                } else {
                    spec.name.clone()
                };
                let comm = spec.comm.map(|op| LayerComm {
                    op,
                    bytes: spec.comm_bytes,
                });
                layers.push(Layer::from_fwd(name, spec.fwd_flops, spec.fwd_bytes, comm));
            }
        }
        match &self.embedding {
            None => {
                let w = Workload::data_parallel(&self.name, layers, self.batch_per_npu);
                w.with_parallelism(self.parallelism)
                    .expect("non-hybrid strategies never fail")
            }
            Some(emb) => {
                let stage = EmbeddingStage {
                    lookup: KernelDesc::new(
                        format!("{}.emb_lookup", self.name),
                        emb.lookup_flops,
                        emb.lookup_bytes,
                    ),
                    update: KernelDesc::new(
                        format!("{}.emb_update", self.name),
                        emb.update_flops,
                        emb.update_bytes,
                    ),
                    fwd_all_to_all_bytes: emb.fwd_all_to_all_bytes,
                    bwd_all_to_all_bytes: emb.bwd_all_to_all_bytes,
                    top_mlp_start: emb.top_mlp_start,
                };
                let w = Workload::hybrid_parallel(&self.name, layers, self.batch_per_npu, stage);
                w.with_parallelism(self.parallelism)
                    .expect("the embedding stage satisfies every strategy")
            }
        }
    }
}

/// A positive, finite f64 field.
fn parse_flops(table: &BTreeMap<String, Value>, key: &str) -> Result<f64, String> {
    table
        .get(key)
        .ok_or_else(|| format!("missing '{key}'"))?
        .as_f64()
        .filter(|v| v.is_finite() && *v >= 0.0)
        .ok_or_else(|| format!("'{key}' must be a non-negative number"))
}

fn parse_layer(table: &BTreeMap<String, Value>, index: usize) -> Result<LayerSpec, String> {
    const KNOWN_KEYS: [&str; 6] = [
        "name",
        "repeat",
        "fwd_flops",
        "fwd_bytes",
        "comm",
        "comm_bytes",
    ];
    for key in table.keys() {
        if !KNOWN_KEYS.contains(&key.as_str()) {
            let hint = did_you_mean(key, &KNOWN_KEYS);
            return Err(format!(
                "unknown key '{key}' (known keys: {}){hint}",
                KNOWN_KEYS.join(", ")
            ));
        }
    }
    let name = match table.get("name") {
        None => format!("layer{index}"),
        Some(v) => v
            .as_str()
            .filter(|s| !s.is_empty())
            .ok_or("'name' must be a non-empty string")?
            .to_string(),
    };
    let repeat = match table.get("repeat") {
        None => 1,
        Some(v) => v
            .as_i64()
            .filter(|&r| r >= 1 && r <= i64::from(u32::MAX))
            .ok_or("'repeat' must be a positive integer")? as u32,
    };
    let fwd_flops = parse_flops(table, "fwd_flops")?;
    let fwd_bytes = parse_flops(table, "fwd_bytes")?;
    let comm = match table.get("comm") {
        None => None,
        Some(v) => {
            let s = v.as_str().ok_or("'comm' must be a string op name")?;
            if s.eq_ignore_ascii_case("none") {
                None
            } else {
                Some(s.parse::<CollectiveOp>()?)
            }
        }
    };
    let comm_bytes = match (comm, table.get("comm_bytes")) {
        (None, None) => 0,
        (None, Some(_)) => {
            return Err("'comm_bytes' without 'comm' (set comm = \"all-reduce\" etc.)".into())
        }
        (Some(_), None) => return Err("'comm' needs 'comm_bytes'".into()),
        (Some(_), Some(v)) => {
            let b = parse_bytes(v)?;
            if b == 0 {
                return Err("'comm_bytes' must be positive".into());
            }
            b
        }
    };
    Ok(LayerSpec {
        name,
        repeat,
        fwd_flops,
        fwd_bytes,
        comm,
        comm_bytes,
    })
}

fn parse_embedding(table: &BTreeMap<String, Value>) -> Result<EmbeddingSpec, String> {
    const KNOWN_KEYS: [&str; 7] = [
        "lookup_flops",
        "lookup_bytes",
        "update_flops",
        "update_bytes",
        "fwd_all_to_all",
        "bwd_all_to_all",
        "top_mlp_start",
    ];
    for key in table.keys() {
        if !KNOWN_KEYS.contains(&key.as_str()) {
            let hint = did_you_mean(key, &KNOWN_KEYS);
            return Err(format!(
                "unknown key '{key}' (known keys: {}){hint}",
                KNOWN_KEYS.join(", ")
            ));
        }
    }
    let a2a = |key: &str| -> Result<u64, String> {
        let b = parse_bytes(table.get(key).ok_or_else(|| format!("missing '{key}'"))?)?;
        if b == 0 {
            return Err(format!("'{key}' must be positive"));
        }
        Ok(b)
    };
    Ok(EmbeddingSpec {
        lookup_flops: parse_flops(table, "lookup_flops")?,
        lookup_bytes: parse_flops(table, "lookup_bytes")?,
        update_flops: parse_flops(table, "update_flops")?,
        update_bytes: parse_flops(table, "update_bytes")?,
        fwd_all_to_all_bytes: a2a("fwd_all_to_all")?,
        bwd_all_to_all_bytes: a2a("bwd_all_to_all")?,
        top_mlp_start: table
            .get("top_mlp_start")
            .ok_or("missing 'top_mlp_start'")?
            .as_i64()
            .filter(|&i| i >= 0)
            .ok_or("'top_mlp_start' must be a non-negative integer")?
            as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const WIDE_MLP: &str = r#"
        name = "wide-mlp"
        parallelism = "data"
        batch_per_npu = 32

        [[layer]]
        name = "fc"
        repeat = 4
        fwd_flops = 1.0e9
        fwd_bytes = 6.4e7
        comm = "all-reduce"
        comm_bytes = "8MB"

        [[layer]]
        name = "head"
        fwd_flops = 2.0e8
        fwd_bytes = 1.0e7
    "#;

    #[test]
    fn spec_parses_and_instantiates() {
        let spec = WorkloadSpec::from_toml_str(WIDE_MLP).unwrap();
        assert_eq!(spec.name, "wide-mlp");
        assert_eq!(spec.expanded_layers(), 5);
        let w = spec.instantiate(16);
        assert_eq!(w.name(), "wide-mlp");
        assert_eq!(w.layers().len(), 5);
        assert_eq!(w.batch_per_npu(), 32);
        assert_eq!(w.parallelism(), Parallelism::Data);
        // 4 repeated fc layers, 8 MB each; the head has no collective.
        assert_eq!(w.total_comm_bytes(), 4 * (8 << 20));
        assert_eq!(w.layers()[0].name(), "fc_0");
        assert_eq!(w.layers()[4].name(), "head");
        assert!(w.layers()[4].comm().is_none());
    }

    #[test]
    fn model_parallel_spec() {
        let text = WIDE_MLP.replace("\"data\"", "\"model\"");
        let w = WorkloadSpec::from_toml_str(&text).unwrap().instantiate(16);
        assert_eq!(w.parallelism(), Parallelism::Model);
    }

    #[test]
    fn hybrid_spec_needs_and_uses_embedding() {
        let e =
            WorkloadSpec::from_toml_str(&WIDE_MLP.replace("\"data\"", "\"hybrid\"")).unwrap_err();
        assert!(e.contains("[embedding]"), "{e}");

        let text = format!(
            "{}\n[embedding]\nlookup_flops = 1e8\nlookup_bytes = 1e9\nupdate_flops = 1e8\n\
             update_bytes = 1e9\nfwd_all_to_all = \"16MB\"\nbwd_all_to_all = \"16MB\"\n\
             top_mlp_start = 4\n",
            WIDE_MLP.replace("\"data\"", "\"hybrid\"")
        );
        let w = WorkloadSpec::from_toml_str(&text).unwrap().instantiate(16);
        assert_eq!(w.parallelism(), Parallelism::Hybrid);
        let emb = w.embedding().unwrap();
        assert_eq!(emb.fwd_all_to_all_bytes, 16 << 20);
        assert_eq!(emb.top_mlp_start, 4);
    }

    #[test]
    fn misspelled_keys_get_hints_through_the_toml_layer() {
        let e = WorkloadSpec::from_toml_str(
            "name = \"x\"\nbatch_per_npu = 1\nparalelism = \"data\"\n[[layer]]\nfwd_flops = 1e9\nfwd_bytes = 1e7\n",
        )
        .unwrap_err();
        assert!(e.contains("did you mean 'parallelism'"), "{e}");
        let e = WorkloadSpec::from_toml_str(
            "name = \"x\"\nbatch_per_npu = 1\n[[layer]]\nfwd_flop = 1e9\nfwd_bytes = 1e7\n",
        )
        .unwrap_err();
        assert!(e.contains("did you mean 'fwd_flops'"), "{e}");
        let e = WorkloadSpec::from_toml_str(
            "name = \"x\"\nbatch_per_npu = 1\nparallelism = \"modell\"\n[[layer]]\nfwd_flops = 1e9\nfwd_bytes = 1e7\n",
        )
        .unwrap_err();
        assert!(e.contains("did you mean 'model'"), "{e}");
    }

    #[test]
    fn invalid_specs_are_rejected() {
        // No layers.
        assert!(WorkloadSpec::from_toml_str("name = \"x\"\nbatch_per_npu = 1\n").is_err());
        // comm without bytes and vice versa.
        let base = "name = \"x\"\nbatch_per_npu = 1\n[[layer]]\nfwd_flops = 1e9\nfwd_bytes = 1e7\n";
        assert!(WorkloadSpec::from_toml_str(&format!("{base}comm = \"all-reduce\"\n")).is_err());
        assert!(WorkloadSpec::from_toml_str(&format!("{base}comm_bytes = \"1MB\"\n")).is_err());
        // Bad numbers.
        assert!(WorkloadSpec::from_toml_str(
            "name = \"x\"\nbatch_per_npu = 0\n[[layer]]\nfwd_flops = 1e9\nfwd_bytes = 1e7\n"
        )
        .is_err());
        assert!(WorkloadSpec::from_toml_str(
            "name = \"x\"\nbatch_per_npu = 1\n[[layer]]\nfwd_flops = -1\nfwd_bytes = 1e7\n"
        )
        .is_err());
        // top_mlp_start out of range.
        let e = WorkloadSpec::from_toml_str(
            "name = \"x\"\nparallelism = \"hybrid\"\nbatch_per_npu = 1\n\
             [[layer]]\nfwd_flops = 1e9\nfwd_bytes = 1e7\n\
             [embedding]\nlookup_flops = 1\nlookup_bytes = 1\nupdate_flops = 1\n\
             update_bytes = 1\nfwd_all_to_all = 1024\nbwd_all_to_all = 1024\ntop_mlp_start = 5\n",
        )
        .unwrap_err();
        assert!(e.contains("out of range"), "{e}");
    }

    #[test]
    fn builtin_names_round_trip_with_hints() {
        for b in BuiltinWorkload::ALL {
            assert_eq!(b.name().parse::<BuiltinWorkload>().unwrap(), b);
        }
        assert_eq!(
            "Megatron".parse::<BuiltinWorkload>().unwrap(),
            BuiltinWorkload::TransformerLm
        );
        let e = "resent50".parse::<BuiltinWorkload>().unwrap_err();
        assert!(e.contains("did you mean 'resnet50'"), "{e}");
        let e = "dlmr".parse::<BuiltinWorkload>().unwrap_err();
        assert!(e.contains("did you mean 'dlrm'"), "{e}");
    }

    #[test]
    fn comm_none_is_accepted() {
        let w = WorkloadSpec::from_toml_str(
            "name = \"x\"\nbatch_per_npu = 1\n[[layer]]\nfwd_flops = 1e9\nfwd_bytes = 1e7\ncomm = \"none\"\n",
        )
        .unwrap();
        assert!(w.layers[0].comm.is_none());
    }
}
