//! The five evaluated system configurations (paper Table VI).

use std::fmt;

use ace_endpoint::{
    AceEndpoint, AceEndpointParams, BaselineEngine, BaselineParams, CollectiveEngine, IdealEndpoint,
};

/// The endpoint configurations compared throughout Section VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemConfig {
    /// No compute/communication overlap: collectives are gathered and
    /// issued in one batch at the end of back-propagation with every
    /// endpoint resource available to them.
    BaselineNoOverlap,
    /// Overlapped, tuned for communication: 450 GB/s of HBM and 6 SMs go
    /// to the communication task (reaches ≈90 % of ideal network
    /// performance).
    BaselineCommOpt,
    /// Overlapped, tuned for compute: communication gets 128 GB/s and
    /// 2 SMs; compute keeps 772 GB/s and 78 SMs.
    BaselineCompOpt,
    /// The proposed system: ACE handles collectives with a 128 GB/s DMA
    /// carve-out; all 80 SMs and 772 GB/s remain for training compute.
    Ace,
    /// Endpoint processes messages in one cycle; upper bound.
    Ideal,
}

impl SystemConfig {
    /// All five configurations in Table VI order.
    pub const ALL: [SystemConfig; 5] = [
        SystemConfig::BaselineNoOverlap,
        SystemConfig::BaselineCommOpt,
        SystemConfig::BaselineCompOpt,
        SystemConfig::Ace,
        SystemConfig::Ideal,
    ];

    /// SMs available to training compute.
    pub fn compute_sms(self) -> u32 {
        match self {
            SystemConfig::BaselineNoOverlap => 80,
            SystemConfig::BaselineCommOpt => 74,
            SystemConfig::BaselineCompOpt => 78,
            SystemConfig::Ace => 80,
            SystemConfig::Ideal => 80,
        }
    }

    /// HBM bandwidth available to training compute, GB/s.
    pub fn compute_mem_gbps(self) -> f64 {
        match self {
            SystemConfig::BaselineNoOverlap => 900.0,
            SystemConfig::BaselineCommOpt => 450.0,
            SystemConfig::BaselineCompOpt => 772.0,
            SystemConfig::Ace => 772.0,
            SystemConfig::Ideal => 900.0,
        }
    }

    /// Whether communication overlaps compute (false only for
    /// BaselineNoOverlap).
    pub fn overlaps(self) -> bool {
        !matches!(self, SystemConfig::BaselineNoOverlap)
    }

    /// Builds one node's collective engine. `phase_weights` carries the
    /// ACE SRAM-partition heuristic weights for the workload's all-reduce
    /// plan.
    pub fn make_engine(self, phase_weights: &[f64]) -> Box<dyn CollectiveEngine> {
        match self {
            SystemConfig::BaselineNoOverlap => {
                Box::new(BaselineEngine::new(BaselineParams::no_overlap()))
            }
            SystemConfig::BaselineCommOpt => {
                Box::new(BaselineEngine::new(BaselineParams::comm_opt()))
            }
            SystemConfig::BaselineCompOpt => {
                Box::new(BaselineEngine::new(BaselineParams::comp_opt()))
            }
            SystemConfig::Ace => Box::new(AceEndpoint::new(AceEndpointParams::paper_default(
                phase_weights.to_vec(),
            ))),
            SystemConfig::Ideal => Box::new(IdealEndpoint::new()),
        }
    }

    /// Short name used in experiment tables.
    pub fn short_name(self) -> &'static str {
        match self {
            SystemConfig::BaselineNoOverlap => "NoOverlap",
            SystemConfig::BaselineCommOpt => "CommOpt",
            SystemConfig::BaselineCompOpt => "CompOpt",
            SystemConfig::Ace => "ACE",
            SystemConfig::Ideal => "Ideal",
        }
    }
}

impl fmt::Display for SystemConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

impl ace_net::Spelling for SystemConfig {
    const WHAT: &'static str = "system config";

    fn keywords() -> &'static [&'static str] {
        &["NoOverlap", "CommOpt", "CompOpt", "ACE", "Ideal"]
    }

    fn spellings() -> &'static str {
        "one of NoOverlap, CommOpt, CompOpt, ACE, Ideal (case-insensitive)"
    }

    fn parse_spelling(s: &str) -> Result<Self, ace_net::SpellingError> {
        let lower = s.trim().to_ascii_lowercase();
        SystemConfig::ALL
            .into_iter()
            .find(|c| c.short_name().to_ascii_lowercase() == lower)
            .ok_or(ace_net::SpellingError::Unknown)
    }
}

impl std::str::FromStr for SystemConfig {
    type Err = String;

    /// Parses a configuration from its [`short_name`](SystemConfig::short_name)
    /// (case-insensitive), as used by sweep scenario files. Error wording
    /// (the valid-spelling list and the did-you-mean hint) comes from the
    /// shared [`ace_net::Spelling`] formatter.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ace_net::Spelling::from_spelling(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_vi_resource_splits() {
        assert_eq!(SystemConfig::BaselineCommOpt.compute_sms(), 74);
        assert_eq!(SystemConfig::BaselineCommOpt.compute_mem_gbps(), 450.0);
        assert_eq!(SystemConfig::BaselineCompOpt.compute_sms(), 78);
        assert_eq!(SystemConfig::BaselineCompOpt.compute_mem_gbps(), 772.0);
        assert_eq!(SystemConfig::Ace.compute_sms(), 80);
        assert_eq!(SystemConfig::Ace.compute_mem_gbps(), 772.0);
        assert_eq!(SystemConfig::Ideal.compute_mem_gbps(), 900.0);
    }

    #[test]
    fn only_no_overlap_blocks() {
        for c in SystemConfig::ALL {
            assert_eq!(c.overlaps(), c != SystemConfig::BaselineNoOverlap);
        }
    }

    #[test]
    fn engines_construct_for_all_configs() {
        for c in SystemConfig::ALL {
            let mut e = c.make_engine(&[1.0, 0.5, 0.5, 1.0]);
            assert!(e.try_admit(0, 1024, ace_simcore::SimTime::ZERO));
        }
    }

    #[test]
    fn short_names_roundtrip_through_from_str() {
        for c in SystemConfig::ALL {
            assert_eq!(c.short_name().parse::<SystemConfig>().unwrap(), c);
            assert_eq!(
                c.short_name()
                    .to_lowercase()
                    .parse::<SystemConfig>()
                    .unwrap(),
                c
            );
        }
        assert!("NotAConfig".parse::<SystemConfig>().is_err());
    }

    #[test]
    fn unknown_config_errors_carry_hints() {
        // A near-miss gets a did-you-mean suggestion...
        let e = "AEC".parse::<SystemConfig>().unwrap_err();
        assert!(e.contains("did you mean 'ACE'"), "{e}");
        let e = "CommOpts".parse::<SystemConfig>().unwrap_err();
        assert!(e.contains("did you mean 'CommOpt'"), "{e}");
        let e = "ideel".parse::<SystemConfig>().unwrap_err();
        assert!(e.contains("did you mean 'Ideal'"), "{e}");
        // ...every error lists the valid spellings...
        let e = "NotAConfig".parse::<SystemConfig>().unwrap_err();
        assert!(e.contains("NoOverlap") && e.contains("Ideal"), "{e}");
        // ...and a wild miss gets no bogus suggestion.
        assert!(!e.contains("did you mean"), "{e}");
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = SystemConfig::ALL.iter().map(|c| c.short_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
