//! The two-iteration training loop (Section V, "Target Workloads" /
//! "Metric of Evaluation").
//!
//! Forward passes block per layer on the previous iteration's
//! weight-gradient all-reduce ("for each layer we need to make sure the
//! weight gradient communication of the previous iteration is completed");
//! backward passes emit one collective per layer, scheduled LIFO. DLRM
//! additionally blocks on the embedding all-to-all before its top MLP and
//! on the backward all-to-all before the embedding update. Exposed
//! communication is every cycle the compute timeline spends stalled on a
//! collective.

use ace_collectives::CollectiveOp;
use ace_compute::{KernelDesc, NpuParams};
use ace_net::{NetworkParams, TopologySpec};
use ace_simcore::{SimTime, TimeSeries};
use ace_workloads::{Parallelism, Workload};

use crate::config::SystemConfig;
use crate::executor::{CollHandle, CollectiveExecutor};
use crate::report::IterationReport;

/// Simulates `iterations` training iterations of one workload on one
/// system configuration.
pub struct TrainingSim {
    config: SystemConfig,
    workload: Workload,
    spec: TopologySpec,
    npu: NpuParams,
    net_params: NetworkParams,
    exec: CollectiveExecutor,
    iterations: u32,
    optimized_embedding: bool,
    // running state
    t: SimTime,
    compute_busy: u64,
    exposed: u64,
    compute_series: TimeSeries,
}

impl std::fmt::Debug for TrainingSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainingSim")
            .field("config", &self.config)
            .field("workload", &self.workload.name())
            .field("topology", &self.spec)
            .finish()
    }
}

impl TrainingSim {
    /// Creates a simulator. `optimized_embedding` enables the Fig. 12 DLRM
    /// training-loop optimization (embedding lookup/update of the
    /// next/previous iteration overlapped with the current iteration's
    /// compute).
    pub fn new(
        config: SystemConfig,
        workload: Workload,
        topology: impl Into<TopologySpec>,
        iterations: u32,
        optimized_embedding: bool,
    ) -> TrainingSim {
        let spec = topology.into();
        let net_params = NetworkParams::paper_default();
        let plan = ace_collectives::CollectivePlan::for_spec(CollectiveOp::AllReduce, spec);
        let weights = CollectiveExecutor::phase_weights(&plan, &net_params);
        let exec = CollectiveExecutor::new(spec, net_params, {
            let weights = weights.clone();
            move || config.make_engine(&weights)
        });
        TrainingSim {
            config,
            workload,
            spec,
            npu: NpuParams::paper_default(),
            net_params,
            exec,
            iterations,
            optimized_embedding,
            t: SimTime::ZERO,
            compute_busy: 0,
            exposed: 0,
            compute_series: TimeSeries::new(1000),
        }
    }

    /// Runs the training loop and produces the report.
    pub fn run(mut self) -> IterationReport {
        let layers = self.workload.layers().len();
        let mut prev_ar: Vec<Option<CollHandle>> = vec![None; layers];
        let mut fwd_busy_windows: Vec<(u64, u64)> = Vec::new(); // (ace busy, window)
        let mut fwd_cycles_total: u64 = 0;

        // Optimized DLRM loop: iteration 0's lookup runs before training
        // starts, so its all-to-all is already in flight at t = 0.
        let mut carried_fwd_a2a: Option<CollHandle> = None;
        if self.optimized_embedding {
            if let Some(emb) = self.workload.embedding().cloned() {
                carried_fwd_a2a = Some(self.exec.issue(
                    CollectiveOp::AllToAll,
                    emb.fwd_all_to_all_bytes,
                    self.t,
                ));
            }
        }

        for iter in 0..self.iterations {
            // ---------------- forward pass ----------------
            let fwd_start = self.t;
            let ace_busy_at_start = self.ace_busy_cycles();

            let mut fwd_a2a: Option<CollHandle> = None;
            if let Some(emb) = self.workload.embedding().cloned() {
                if self.optimized_embedding {
                    // Lookup ran in the background during the previous
                    // iteration (1 SM + 80 GB/s carve-out, Section VI-D)
                    // and its all-to-all was issued as soon as it
                    // finished — it has been transferring since then.
                    fwd_a2a = carried_fwd_a2a.take();
                } else {
                    self.run_kernel(&emb.lookup);
                    fwd_a2a = Some(self.exec.issue(
                        CollectiveOp::AllToAll,
                        emb.fwd_all_to_all_bytes,
                        self.t,
                    ));
                }
            }

            for (i, prev) in prev_ar.iter_mut().enumerate() {
                if self.config.overlaps() && iter > 0 {
                    if let Some(h) = prev.take() {
                        self.wait_on(h);
                    }
                }
                if let Some(emb) = self.workload.embedding() {
                    if i == emb.top_mlp_start {
                        // "The only exception is DLRM fwd-pass all-to-all
                        // where the training loop performs a blocking wait"
                        // (Table VI footnote) — in every configuration.
                        if let Some(h) = fwd_a2a.take() {
                            self.wait_on(h);
                        }
                    }
                }
                let kernel = self.workload.layers()[i].fwd().clone();
                self.run_kernel(&kernel);
            }
            let fwd_end = self.t;
            self.exec.run_until(fwd_end);
            fwd_busy_windows.push((
                self.ace_busy_cycles().saturating_sub(ace_busy_at_start),
                fwd_end - fwd_start,
            ));
            fwd_cycles_total += fwd_end - fwd_start;

            // ---------------- backward pass ----------------
            let mut deferred: Vec<(CollectiveOp, u64)> = Vec::new();
            for i in (0..layers).rev() {
                let (ig, wg, comm) = {
                    let l = &self.workload.layers()[i];
                    (l.input_grad().clone(), l.weight_grad().clone(), l.comm())
                };
                self.run_kernel(&ig);
                self.run_kernel(&wg);
                if let Some(c) = comm {
                    if self.config.overlaps() {
                        prev_ar[i] = Some(self.exec.issue(c.op, c.bytes, self.t));
                    } else {
                        deferred.push((c.op, c.bytes));
                    }
                }
            }

            if let Some(emb) = self.workload.embedding().cloned() {
                // Optimized loop: the next iteration's background lookup
                // finished partway through this backward pass, so its
                // all-to-all is issued now and overlaps the remaining
                // communication (Section VI-D: "we immediately issue
                // communication once the lookup is finished").
                if self.optimized_embedding && iter + 1 < self.iterations {
                    carried_fwd_a2a = Some(self.exec.issue(
                        CollectiveOp::AllToAll,
                        emb.fwd_all_to_all_bytes,
                        self.t,
                    ));
                }
                // Embedding gradients return to their owner tables, then
                // the tables are updated before the next iteration.
                let h = self
                    .exec
                    .issue(CollectiveOp::AllToAll, emb.bwd_all_to_all_bytes, self.t);
                self.wait_on(h);
                if !self.optimized_embedding {
                    self.run_kernel(&emb.update);
                }
            }

            if !self.config.overlaps() {
                // BaselineNoOverlap: one batched communication "kernel" at
                // the end of back-propagation, blocking.
                let handles: Vec<CollHandle> = deferred
                    .into_iter()
                    .map(|(op, bytes)| self.exec.issue(op, bytes, self.t))
                    .collect();
                for h in handles {
                    self.wait_on(h);
                }
            }
        }

        // Drain the final iteration's outstanding collectives: the next
        // forward pass could not start before they finish, so the stall is
        // exposed communication.
        let idle = self.exec.run_to_idle();
        if idle > self.t {
            self.exposed += idle - self.t;
            self.t = idle;
        }

        // Fig. 9b: ACE utilization split into fwd and bwd windows, from the
        // engine's exact integer busy-cycle counters — reconstructing the
        // cycle count from the f64 utilization ratio loses precision, and
        // clamping the per-window ratios at 1.0 would mask over-unity
        // accounting bugs instead of surfacing them.
        let total = self.t;
        let ace_busy_cycles = self.exec.ace_busy_cycles(total);
        let (ace_util_fwd, ace_util_bwd) = match ace_busy_cycles {
            Some(busy_total) => {
                let fwd_busy: u64 = fwd_busy_windows.iter().map(|(b, _)| *b).sum();
                debug_assert!(
                    fwd_busy <= busy_total,
                    "forward-window busy cycles ({fwd_busy}) exceed the engine total \
                     ({busy_total})"
                );
                let bwd_busy = busy_total.saturating_sub(fwd_busy);
                let bwd_cycles = total.cycles().saturating_sub(fwd_cycles_total);
                let f = if fwd_cycles_total == 0 {
                    0.0
                } else {
                    fwd_busy as f64 / fwd_cycles_total as f64
                };
                let b = if bwd_cycles == 0 {
                    0.0
                } else {
                    bwd_busy as f64 / bwd_cycles as f64
                };
                (Some(f), Some(b))
            }
            None => (None, None),
        };

        let network_series = self.exec.network().utilization_series();
        IterationReport {
            workload: self.workload.name().to_string(),
            config: self.config.short_name().to_string(),
            nodes: self.spec.nodes(),
            freq: self.net_params.freq,
            iterations: self.iterations,
            total_cycles: self.t.cycles(),
            compute_cycles: self.compute_busy,
            exposed_comm_cycles: self.exposed,
            compute_series: self.compute_series.bucket_means(),
            network_series,
            ace_util_fwd,
            ace_util_bwd,
            ace_busy_cycles,
            comm_mem_traffic_bytes: self.exec.comm_mem_traffic_bytes(),
            network_bytes: self.exec.network().total_bytes(),
            past_schedules: self.exec.past_schedules(),
        }
    }

    /// Advances the compute timeline by one kernel.
    ///
    /// The optimized DLRM loop permanently loans 1 SM and 80 GB/s of HBM
    /// to the background embedding pipeline (Section VI-D), so training
    /// kernels see slightly reduced resources in that mode.
    fn run_kernel(&mut self, kernel: &KernelDesc) {
        let (sms, mem) = if self.optimized_embedding {
            (
                self.config.compute_sms().saturating_sub(1).max(1),
                (self.config.compute_mem_gbps() - 80.0).max(1.0),
            )
        } else {
            (self.config.compute_sms(), self.config.compute_mem_gbps())
        };
        let cycles = self.npu.kernel_cycles(kernel, sms, mem);
        if cycles == 0 {
            return;
        }
        let start = self.t;
        let end = self.t + cycles;
        self.compute_series.add_interval(start, end, cycles as f64);
        self.compute_busy += cycles;
        self.t = end;
        self.exec.run_until(self.t);
    }

    /// Blocks the compute timeline on a collective; the stall is exposed
    /// communication.
    fn wait_on(&mut self, h: CollHandle) {
        let tc = self.exec.run_until_complete(h);
        if tc > self.t {
            self.exposed += tc - self.t;
            self.t = tc;
        }
    }

    /// ACE cumulative busy cycles at the current frontier (0 for
    /// non-ACE engines) — the exact integer counter, not a value
    /// reconstructed from the utilization ratio.
    fn ace_busy_cycles(&self) -> u64 {
        self.exec.ace_busy_cycles(self.t).unwrap_or(0)
    }

    /// Whether the workload is hybrid-parallel (DLRM).
    pub fn is_hybrid(&self) -> bool {
        self.workload.parallelism() == Parallelism::Hybrid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_net::TorusShape;
    use ace_workloads::{Layer, LayerComm};

    /// A hand-computable workload: one layer = two kernel groups (the
    /// forward kernel and the backward ig/wg pair) plus one backward
    /// all-reduce.
    fn two_kernel_workload() -> Workload {
        let fwd = KernelDesc::new("k.fwd", 1.0e9, 64.0e6);
        let ig = KernelDesc::new("k.ig", 1.0e9, 64.0e6);
        let wg = KernelDesc::new("k.wg", 1.0e9, 64.0e6);
        let comm = LayerComm {
            op: CollectiveOp::AllReduce,
            bytes: 8 << 20,
        };
        Workload::data_parallel(
            "two-kernel",
            vec![Layer::new("k", fwd, ig, wg, Some(comm))],
            1,
        )
    }

    #[test]
    fn ace_busy_split_is_exact() {
        let shape = TorusShape::new(4, 2, 2).unwrap();
        let config = SystemConfig::Ace;
        let report = TrainingSim::new(config, two_kernel_workload(), shape, 1, false).run();

        // The collective is issued during back-propagation and drains
        // after it, so the forward window holds zero engine-busy cycles
        // and the whole exact counter lands in the backward split.
        let busy = report
            .ace_busy_cycles()
            .expect("ACE reports exact busy cycles");
        assert!(busy > 0, "the all-reduce must occupy the engine");
        assert!(busy <= report.total_cycles());
        assert_eq!(report.ace_util_fwd(), Some(0.0));

        // Reconstruct the forward window from the same kernel model the
        // simulator uses: one iteration = exactly the forward kernel.
        let npu = NpuParams::paper_default();
        let fwd_cycles = npu.kernel_cycles(
            &KernelDesc::new("k.fwd", 1.0e9, 64.0e6),
            config.compute_sms(),
            config.compute_mem_gbps(),
        );
        let bwd_cycles = report.total_cycles() - fwd_cycles;
        // Exact identity — no f64 round-trip, no clamping.
        assert_eq!(
            report.ace_util_bwd(),
            Some(busy as f64 / bwd_cycles as f64),
            "backward utilization must derive from the exact counter"
        );
    }

    #[test]
    fn non_ace_configs_report_no_busy_counter() {
        let shape = TorusShape::new(2, 1, 1).unwrap();
        let report = TrainingSim::new(
            SystemConfig::BaselineCommOpt,
            two_kernel_workload(),
            shape,
            1,
            false,
        )
        .run();
        assert_eq!(report.ace_busy_cycles(), None);
        assert_eq!(report.ace_util_fwd(), None);
        assert_eq!(report.ace_util_bwd(), None);
        assert_eq!(report.past_schedules(), 0);
    }
}
