//! The training-loop simulator: a generic task-graph scheduler.
//!
//! [`TrainingSim`] executes any acyclic [`Program`] against the
//! [`CollectiveExecutor`]: it walks the program's schedule (a topological
//! linearization of the dependency DAG), advancing one serial NPU compute
//! timeline. Compute and barrier tasks block on the collectives among
//! their dependencies — every cycle the timeline spends stalled on a
//! collective is **exposed communication** — and collective tasks are
//! issued non-blocking at the current instant (the executor drains them
//! LIFO, Section V).
//!
//! The paper's two-iteration training loop is no longer hard-coded here:
//! [`Program::lower`] compiles `(workload, parallelism, iterations)` into
//! the graph — forward passes blocking per layer on the previous
//! iteration's weight-gradient all-reduce, backward passes emitting one
//! collective per layer, DLRM's blocking all-to-alls — and the Fig. 12
//! optimized embedding loop is the [`Program::optimize_embedding`] graph
//! transform.

use ace_collectives::CollectiveOp;
use ace_compute::{KernelDesc, NpuParams};
use ace_endpoint::CollectiveEngine;
use ace_net::{FaultPlan, NetworkParams, TopologySpec};
use ace_simcore::{SimTime, TimeSeries};
use ace_trace::{Attribution, NullTracer, PipeWeights, Tracer, Track};
use ace_workloads::{LoweringOptions, Parallelism, Program, TaskId, TaskKind, TaskPhase, Workload};

use crate::config::SystemConfig;
use crate::executor::{CollHandle, CollectiveExecutor, ExecutorOptions};
use crate::report::IterationReport;
use crate::run::{RunConditions, RunError};

/// Trace lane for the serial compute timeline's task spans (pid 0 is the
/// scheduler/sim process; tid 0 is the executor's event lane).
const TIMELINE_TRACK: Track = Track { pid: 0, tid: 1 };

/// Simulates a training [`Program`] on one system configuration.
///
/// Generic over the [`Tracer`] like the executor it drives: the default
/// [`NullTracer`] compiles every task-span hook away, while
/// [`from_program_with_tracer`](TrainingSim::from_program_with_tracer)
/// attaches a recording tracer shared with the collective executor.
pub struct TrainingSim<T: Tracer = NullTracer> {
    config: SystemConfig,
    program: Program,
    spec: TopologySpec,
    npu: NpuParams,
    net_params: NetworkParams,
    exec: CollectiveExecutor<Box<dyn CollectiveEngine>, T>,
    // running state
    t: SimTime,
    compute_busy: u64,
    exposed: u64,
    compute_series: TimeSeries,
}

impl<T: Tracer> std::fmt::Debug for TrainingSim<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainingSim")
            .field("config", &self.config)
            .field("program", &self.program.name())
            .field("topology", &self.spec)
            .finish()
    }
}

impl TrainingSim {
    /// Creates a simulator by lowering `workload` under its native
    /// parallelization strategy with the paper-default NPU and network
    /// parameters. `optimized_embedding` applies the Fig. 12 graph
    /// transform ([`Program::optimize_embedding`]).
    pub fn new(
        config: SystemConfig,
        workload: Workload,
        topology: impl Into<TopologySpec>,
        iterations: u32,
        optimized_embedding: bool,
    ) -> TrainingSim {
        let opts = LoweringOptions {
            iterations,
            overlap: config.overlaps(),
        };
        let mut program = Program::lower(&workload, workload.parallelism(), &opts);
        if optimized_embedding {
            program.optimize_embedding();
        }
        Self::from_program(
            config,
            program,
            topology,
            NpuParams::paper_default(),
            NetworkParams::paper_default(),
        )
    }

    /// Creates a simulator for an already-lowered (or user-authored)
    /// program with explicit NPU and network parameters. The program
    /// should be [valid](Program::validate); [`SystemBuilder`] checks
    /// this for you.
    ///
    /// [`SystemBuilder`]: crate::SystemBuilder
    pub fn from_program(
        config: SystemConfig,
        program: Program,
        topology: impl Into<TopologySpec>,
        npu: NpuParams,
        net_params: NetworkParams,
    ) -> TrainingSim {
        TrainingSim::from_program_with_tracer(
            config, program, topology, npu, net_params, NullTracer,
        )
    }
}

impl<T: Tracer> TrainingSim<T> {
    /// [`from_program`](TrainingSim::from_program) with an attached
    /// [`Tracer`]: the executor records link/chunk/phase events and the
    /// training timeline adds one span per scheduled task (tagged with
    /// phase, iteration and role) on its own lane.
    pub fn from_program_with_tracer(
        config: SystemConfig,
        program: Program,
        topology: impl Into<TopologySpec>,
        npu: NpuParams,
        net_params: NetworkParams,
        tracer: T,
    ) -> TrainingSim<T> {
        Self::construct(
            config,
            program,
            topology.into(),
            npu,
            net_params,
            ExecutorOptions::default(),
            None,
            tracer,
        )
    }

    /// [`from_program_with_tracer`](TrainingSim::from_program_with_tracer)
    /// with explicit [`ExecutorOptions`] — the route by which
    /// `sim_threads` (intra-simulation parallelism) reaches the executor.
    /// Results are byte-identical across `sim_threads` values.
    #[deprecated(note = "use `TrainSpec::new(config, program, topology).options(...).build()`")]
    pub fn from_program_with_options(
        config: SystemConfig,
        program: Program,
        topology: impl Into<TopologySpec>,
        npu: NpuParams,
        net_params: NetworkParams,
        options: ExecutorOptions,
        tracer: T,
    ) -> TrainingSim<T> {
        Self::construct(
            config,
            program,
            topology.into(),
            npu,
            net_params,
            options,
            None,
            tracer,
        )
    }

    /// [`from_program_with_options`](TrainingSim::from_program_with_options)
    /// under explicit [`RunConditions`]: the fault/contention spec is
    /// resolved against the topology up front (so a disconnected fabric
    /// is a typed [`RunError`], never a hang), the straggler
    /// distribution is applied to the program's compute tasks, and the
    /// executor runs serially on a faulted fabric.
    #[allow(clippy::too_many_arguments)]
    pub fn from_program_with_conditions(
        config: SystemConfig,
        mut program: Program,
        topology: impl Into<TopologySpec>,
        npu: NpuParams,
        net_params: NetworkParams,
        options: ExecutorOptions,
        conditions: &RunConditions,
        tracer: T,
    ) -> Result<TrainingSim<T>, RunError> {
        let spec = topology.into();
        let fault = if conditions.is_pristine() {
            None
        } else {
            program.apply_stragglers(&conditions.straggler);
            let plan = conditions.resolve(spec, &net_params)?;
            (!plan.is_pristine()).then_some(plan)
        };
        Ok(Self::construct(
            config, program, spec, npu, net_params, options, fault, tracer,
        ))
    }

    /// Shared constructor body behind every public entry point.
    #[allow(clippy::too_many_arguments)]
    fn construct(
        config: SystemConfig,
        program: Program,
        spec: TopologySpec,
        npu: NpuParams,
        net_params: NetworkParams,
        options: ExecutorOptions,
        fault: Option<FaultPlan>,
        tracer: T,
    ) -> TrainingSim<T> {
        let plan = ace_collectives::CollectivePlan::for_spec(CollectiveOp::AllReduce, spec);
        let weights = CollectiveExecutor::phase_weights(&plan, &net_params);
        let make_engine = {
            let weights = weights.clone();
            move || config.make_engine(&weights)
        };
        let mut exec = match &fault {
            Some(fp) => CollectiveExecutor::with_tracer_and_faults(
                spec,
                net_params,
                options,
                fp,
                make_engine,
                tracer,
            ),
            None => CollectiveExecutor::with_tracer(spec, net_params, options, make_engine, tracer),
        };
        if exec.tracer().enabled() {
            exec.tracer_mut().meta_thread(TIMELINE_TRACK, "timeline");
        }
        TrainingSim {
            config,
            program,
            spec,
            npu,
            net_params,
            exec,
            t: SimTime::ZERO,
            compute_busy: 0,
            exposed: 0,
            compute_series: TimeSeries::new(1000),
        }
    }

    /// The program about to run.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Executes the program's schedule and produces the report.
    pub fn run(self) -> IterationReport {
        self.run_with_tracer().0
    }

    /// Executes the schedule and returns the report together with the
    /// tracer (export the recorded events after the run).
    pub fn run_with_tracer(mut self) -> (IterationReport, T) {
        if self.program.timelines() > 1 {
            return self.run_pipeline_with_tracer();
        }
        let mut handles: Vec<Option<CollHandle>> = vec![None; self.program.task_slots()];
        // Fig. 9b forward/backward split: one (ace-busy, window) pair per
        // contiguous run of forward-phase timeline tasks.
        let mut fwd_busy_windows: Vec<(u64, u64)> = Vec::new();
        let mut fwd_cycles_total: u64 = 0;
        let mut window: Option<(SimTime, u64)> = None; // (start, busy at start)

        let schedule: Vec<TaskId> = self.program.schedule().to_vec();
        for id in schedule {
            let task = self.program.task(id);
            match task.kind() {
                TaskKind::Collective { op, bytes } => {
                    // Non-blocking issue at the current timeline instant;
                    // schedule order fixes the executor's LIFO priority.
                    handles[id.index()] = Some(self.exec.issue(*op, *bytes, self.t));
                    if self.exec.tracer().enabled() {
                        let name = format!("issue:{}:i{}", task.role().short_name(), task.iter());
                        let at = self.t;
                        self.exec.tracer_mut().instant(TIMELINE_TRACK, &name, at);
                    }
                }
                TaskKind::Compute(_) | TaskKind::Barrier => {
                    let (t_begin, span_phase, span_role, span_iter) =
                        (self.t, task.phase(), task.role(), task.iter());
                    // Forward-window bookkeeping keys on timeline tasks
                    // only: a collective issued for the *next* iteration
                    // during this backward pass must not open a window.
                    match task.phase() {
                        TaskPhase::Forward => {
                            if window.is_none() {
                                window = Some((self.t, self.ace_busy_cycles()));
                            }
                        }
                        TaskPhase::Backward => {
                            if let Some((start, busy_start)) = window.take() {
                                fwd_busy_windows.push((
                                    self.ace_busy_cycles().saturating_sub(busy_start),
                                    self.t - start,
                                ));
                                fwd_cycles_total += self.t - start;
                            }
                        }
                    }
                    // Block on the collective dependencies, in order.
                    let waits: Vec<CollHandle> = task
                        .deps()
                        .iter()
                        .filter_map(|dep| handles[dep.index()])
                        .collect();
                    let kernel = match task.kind() {
                        TaskKind::Compute(k) => Some(k.clone()),
                        _ => None,
                    };
                    for h in waits {
                        self.wait_on(h);
                    }
                    if let Some(kernel) = kernel {
                        self.run_kernel(&kernel);
                    }
                    // Task span covers the wait (exposed comm) plus the
                    // kernel itself — the timeline's full occupancy.
                    if self.exec.tracer().enabled() {
                        let name = format!(
                            "task:{}:{}:i{}",
                            span_phase.short_name(),
                            span_role.short_name(),
                            span_iter
                        );
                        let end = self.t;
                        self.exec
                            .tracer_mut()
                            .span(TIMELINE_TRACK, &name, t_begin, end);
                    }
                }
            }
        }
        if let Some((start, busy_start)) = window.take() {
            // A program ending mid-forward still closes its window.
            fwd_busy_windows.push((
                self.ace_busy_cycles().saturating_sub(busy_start),
                self.t - start,
            ));
            fwd_cycles_total += self.t - start;
        }

        // Drain the outstanding collectives: the next forward pass could
        // not start before they finish, so the stall is exposed
        // communication.
        let idle = self.exec.run_to_idle();
        if idle > self.t {
            self.exposed += idle - self.t;
            self.t = idle;
        }

        // Fig. 9b: ACE utilization split into fwd and bwd windows, from the
        // engine's exact integer busy-cycle counters — reconstructing the
        // cycle count from the f64 utilization ratio loses precision, and
        // clamping the per-window ratios at 1.0 would mask over-unity
        // accounting bugs instead of surfacing them.
        let total = self.t;
        let ace_busy_cycles = self.exec.ace_busy_cycles(total);
        let (ace_util_fwd, ace_util_bwd) = match ace_busy_cycles {
            Some(busy_total) => {
                let fwd_busy: u64 = fwd_busy_windows.iter().map(|(b, _)| *b).sum();
                debug_assert!(
                    fwd_busy <= busy_total,
                    "forward-window busy cycles ({fwd_busy}) exceed the engine total \
                     ({busy_total})"
                );
                let bwd_busy = busy_total.saturating_sub(fwd_busy);
                let bwd_cycles = total.cycles().saturating_sub(fwd_cycles_total);
                let f = if fwd_cycles_total == 0 {
                    0.0
                } else {
                    fwd_busy as f64 / fwd_cycles_total as f64
                };
                let b = if bwd_cycles == 0 {
                    0.0
                } else {
                    bwd_busy as f64 / bwd_cycles as f64
                };
                (Some(f), Some(b))
            }
            None => (None, None),
        };

        // Bottleneck attribution: the communication share (exposed comm,
        // by the exact total = compute + exposed identity) is apportioned
        // across the endpoint pipes and the fabric by their busy cycles.
        let attribution = Attribution::attribute(
            self.t.cycles(),
            self.compute_busy,
            &PipeWeights::from_pipes(
                self.exec.pipe_busy_totals(),
                self.exec.network().util_busy_total_cycles(),
            ),
        );

        let network_series = self.exec.network().utilization_series();
        let report = IterationReport {
            workload: self.program.name().to_string(),
            config: self.config.short_name().to_string(),
            nodes: self.spec.nodes(),
            freq: self.net_params.freq,
            iterations: self.program.iterations(),
            total_cycles: self.t.cycles(),
            compute_cycles: self.compute_busy,
            exposed_comm_cycles: self.exposed,
            compute_series: self.compute_series.bucket_means(),
            network_series,
            ace_util_fwd,
            ace_util_bwd,
            ace_busy_cycles,
            comm_mem_traffic_bytes: self.exec.comm_mem_traffic_bytes(),
            network_bytes: self.exec.network().total_bytes(),
            past_schedules: self.exec.past_schedules(),
            attribution,
        };
        (report, self.exec.into_tracer())
    }

    /// Executes a multi-timeline (pipeline-parallel) program: one
    /// compute frontier per stage, cross-timeline dependencies becoming
    /// real waits (pipeline bubbles), collectives issued at their
    /// stage's frontier against the shared fabric.
    ///
    /// Reported `compute_cycles` is the *per-stage mean* kernel time
    /// (total kernel cycles / stages) and `exposed_comm_cycles` the
    /// remainder, preserving the exact `total = compute + exposed`
    /// identity — the exposed fraction of a communication-free uniform
    /// GPipe pipeline is then the textbook bubble fraction
    /// `(S-1)/(M+S-1)`. The Fig. 9b forward/backward ACE-utilization
    /// split is not defined for concurrent stages and reports `None`.
    fn run_pipeline_with_tracer(mut self) -> (IterationReport, T) {
        let stages = self.program.timelines();
        let mut handles: Vec<Option<CollHandle>> = vec![None; self.program.task_slots()];
        let mut finish: Vec<SimTime> = vec![SimTime::ZERO; self.program.task_slots()];
        let mut tls: Vec<SimTime> = vec![SimTime::ZERO; stages];
        let mut kernel_total: u64 = 0;

        if self.exec.tracer().enabled() {
            for k in 0..stages {
                let track = Track {
                    pid: 0,
                    tid: 1 + k as u32,
                };
                self.exec
                    .tracer_mut()
                    .meta_thread(track, &format!("stage{k}"));
            }
        }

        let schedule: Vec<TaskId> = self.program.schedule().to_vec();
        for id in schedule {
            let task = self.program.task(id);
            let k = task.timeline();
            match task.kind() {
                TaskKind::Collective { op, bytes } => {
                    // Issued at the stage's frontier; the executor clamps
                    // injection to its own clock (the shared event queue
                    // may already have advanced past it).
                    handles[id.index()] = Some(self.exec.issue(*op, *bytes, tls[k]));
                }
                TaskKind::Compute(_) | TaskKind::Barrier => {
                    let t_begin = tls[k];
                    for &dep in task.deps() {
                        match handles[dep.index()] {
                            Some(h) => {
                                // Stage-boundary transfer: the stall is a
                                // pipeline bubble on this stage.
                                let tc = self.exec.run_until_complete(h);
                                if tc > tls[k] {
                                    tls[k] = tc;
                                }
                            }
                            None => {
                                // Cross-timeline compute dependency
                                // (zero-byte boundary) or serialization
                                // edge — wait for its finish time.
                                if finish[dep.index()] > tls[k] {
                                    tls[k] = finish[dep.index()];
                                }
                            }
                        }
                    }
                    if let TaskKind::Compute(kernel) = task.kind() {
                        let (sms, mem) = match self.program.carveout() {
                            Some(c) => (
                                self.config.compute_sms().saturating_sub(c.sms).max(1),
                                (self.config.compute_mem_gbps() - c.mem_gbps).max(1.0),
                            ),
                            None => (self.config.compute_sms(), self.config.compute_mem_gbps()),
                        };
                        let cycles = self.npu.kernel_cycles(kernel, sms, mem);
                        if cycles > 0 {
                            let start = tls[k];
                            let end = start + cycles;
                            self.compute_series.add_interval(start, end, cycles as f64);
                            kernel_total += cycles;
                            tls[k] = end;
                            // Keep the network draining up to the newest
                            // frontier (no-op when already past it).
                            self.exec.run_until(end);
                        }
                    }
                    finish[id.index()] = tls[k];
                    if self.exec.tracer().enabled() {
                        let name = format!(
                            "task:{}:{}:i{}",
                            task.phase().short_name(),
                            task.role().short_name(),
                            task.iter()
                        );
                        let end = tls[k];
                        let track = Track {
                            pid: 0,
                            tid: 1 + k as u32,
                        };
                        self.exec.tracer_mut().span(track, &name, t_begin, end);
                    }
                }
            }
        }

        // Drain outstanding transfers; the end-to-end time is the slowest
        // stage or the fabric, whichever finishes last.
        let idle = self.exec.run_to_idle();
        let mut end = tls.iter().copied().fold(SimTime::ZERO, SimTime::max);
        if idle > end {
            end = idle;
        }
        self.t = end;
        // Per-stage mean accounting (see doc comment above).
        self.compute_busy = kernel_total / stages as u64;
        self.exposed = self.t.cycles().saturating_sub(self.compute_busy);

        let attribution = Attribution::attribute(
            self.t.cycles(),
            self.compute_busy,
            &PipeWeights::from_pipes(
                self.exec.pipe_busy_totals(),
                self.exec.network().util_busy_total_cycles(),
            ),
        );
        let network_series = self.exec.network().utilization_series();
        let report = IterationReport {
            workload: self.program.name().to_string(),
            config: self.config.short_name().to_string(),
            nodes: self.spec.nodes(),
            freq: self.net_params.freq,
            iterations: self.program.iterations(),
            total_cycles: self.t.cycles(),
            compute_cycles: self.compute_busy,
            exposed_comm_cycles: self.exposed,
            compute_series: self.compute_series.bucket_means(),
            network_series,
            ace_util_fwd: None,
            ace_util_bwd: None,
            ace_busy_cycles: self.exec.ace_busy_cycles(self.t),
            comm_mem_traffic_bytes: self.exec.comm_mem_traffic_bytes(),
            network_bytes: self.exec.network().total_bytes(),
            past_schedules: self.exec.past_schedules(),
            attribution,
        };
        (report, self.exec.into_tracer())
    }

    /// Advances the compute timeline by one kernel.
    ///
    /// A program carve-out (the optimized DLRM loop permanently loans
    /// 1 SM and 80 GB/s of HBM to the background embedding pipeline,
    /// Section VI-D) reduces the resources every training kernel sees.
    fn run_kernel(&mut self, kernel: &KernelDesc) {
        let (sms, mem) = match self.program.carveout() {
            Some(c) => (
                self.config.compute_sms().saturating_sub(c.sms).max(1),
                (self.config.compute_mem_gbps() - c.mem_gbps).max(1.0),
            ),
            None => (self.config.compute_sms(), self.config.compute_mem_gbps()),
        };
        let cycles = self.npu.kernel_cycles(kernel, sms, mem);
        if cycles == 0 {
            return;
        }
        let start = self.t;
        let end = self.t + cycles;
        self.compute_series.add_interval(start, end, cycles as f64);
        self.compute_busy += cycles;
        self.t = end;
        self.exec.run_until(self.t);
    }

    /// Blocks the compute timeline on a collective; the stall is exposed
    /// communication.
    fn wait_on(&mut self, h: CollHandle) {
        let tc = self.exec.run_until_complete(h);
        if tc > self.t {
            self.exposed += tc - self.t;
            self.t = tc;
        }
    }

    /// ACE cumulative busy cycles at the current frontier (0 for
    /// non-ACE engines) — the exact integer counter, not a value
    /// reconstructed from the utilization ratio.
    fn ace_busy_cycles(&self) -> u64 {
        self.exec.ace_busy_cycles(self.t).unwrap_or(0)
    }

    /// Whether the program trains hybrid-parallel (DLRM).
    pub fn is_hybrid(&self) -> bool {
        self.program.parallelism() == Parallelism::Hybrid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_net::TorusShape;
    use ace_workloads::{Layer, LayerComm, TaskRole};

    /// A hand-computable workload: one layer = two kernel groups (the
    /// forward kernel and the backward ig/wg pair) plus one backward
    /// all-reduce.
    fn two_kernel_workload() -> Workload {
        let fwd = KernelDesc::new("k.fwd", 1.0e9, 64.0e6);
        let ig = KernelDesc::new("k.ig", 1.0e9, 64.0e6);
        let wg = KernelDesc::new("k.wg", 1.0e9, 64.0e6);
        let comm = LayerComm {
            op: CollectiveOp::AllReduce,
            bytes: 8 << 20,
        };
        Workload::data_parallel(
            "two-kernel",
            vec![Layer::new("k", fwd, ig, wg, Some(comm))],
            1,
        )
    }

    #[test]
    fn ace_busy_split_is_exact() {
        let shape = TorusShape::new(4, 2, 2).unwrap();
        let config = SystemConfig::Ace;
        let report = TrainingSim::new(config, two_kernel_workload(), shape, 1, false).run();

        // The collective is issued during back-propagation and drains
        // after it, so the forward window holds zero engine-busy cycles
        // and the whole exact counter lands in the backward split.
        let busy = report
            .ace_busy_cycles()
            .expect("ACE reports exact busy cycles");
        assert!(busy > 0, "the all-reduce must occupy the engine");
        assert!(busy <= report.total_cycles());
        assert_eq!(report.ace_util_fwd(), Some(0.0));

        // Reconstruct the forward window from the same kernel model the
        // simulator uses: one iteration = exactly the forward kernel.
        let npu = NpuParams::paper_default();
        let fwd_cycles = npu.kernel_cycles(
            &KernelDesc::new("k.fwd", 1.0e9, 64.0e6),
            config.compute_sms(),
            config.compute_mem_gbps(),
        );
        let bwd_cycles = report.total_cycles() - fwd_cycles;
        // Exact identity — no f64 round-trip, no clamping.
        assert_eq!(
            report.ace_util_bwd(),
            Some(busy as f64 / bwd_cycles as f64),
            "backward utilization must derive from the exact counter"
        );
    }

    #[test]
    fn non_ace_configs_report_no_busy_counter() {
        let shape = TorusShape::new(2, 1, 1).unwrap();
        let report = TrainingSim::new(
            SystemConfig::BaselineCommOpt,
            two_kernel_workload(),
            shape,
            1,
            false,
        )
        .run();
        assert_eq!(report.ace_busy_cycles(), None);
        assert_eq!(report.ace_util_fwd(), None);
        assert_eq!(report.ace_util_bwd(), None);
        assert_eq!(report.past_schedules(), 0);
    }

    #[test]
    fn exposed_comm_equals_scheduler_stall_by_construction() {
        // The timeline only advances through kernels (compute) and waits
        // (exposed), so the identity holds exactly for any program.
        for config in SystemConfig::ALL {
            let shape = TorusShape::new(2, 2, 1).unwrap();
            let report = TrainingSim::new(config, two_kernel_workload(), shape, 2, false).run();
            assert_eq!(
                report.total_cycles(),
                report.compute_cycles() + report.exposed_comm_cycles(),
                "{config}"
            );
        }
    }

    #[test]
    fn attribution_conserves_for_training_runs() {
        for config in SystemConfig::ALL {
            let shape = TorusShape::new(2, 2, 1).unwrap();
            let report = TrainingSim::new(config, two_kernel_workload(), shape, 2, false).run();
            let a = report.attribution();
            assert!(a.conserves(), "{config}: {a:?}");
            assert_eq!(a.total_cycles, report.total_cycles(), "{config}");
            assert_eq!(a.compute_cycles, report.compute_cycles(), "{config}");
        }
    }

    #[test]
    fn traced_training_records_task_spans() {
        let w = two_kernel_workload();
        let opts = LoweringOptions {
            iterations: 1,
            overlap: SystemConfig::Ace.overlaps(),
        };
        let program = Program::lower(&w, w.parallelism(), &opts);
        let shape = TorusShape::new(2, 2, 1).unwrap();
        let (report, tr) = TrainingSim::from_program_with_tracer(
            SystemConfig::Ace,
            program,
            shape,
            NpuParams::paper_default(),
            NetworkParams::paper_default(),
            ace_trace::RecordingTracer::new(),
        )
        .run_with_tracer();
        assert!(report.total_cycles() > 0);
        assert!(tr.count_with_prefix("task:") > 0, "timeline task spans");
        assert!(tr.count_with_prefix("issue:") > 0, "collective issue marks");
        assert!(tr.span_cycles_with_prefix("link:") > 0, "link busy spans");
    }

    #[test]
    fn custom_program_runs_end_to_end() {
        use ace_workloads::TaskPhase;
        let mut p = Program::new("hand-rolled", Parallelism::Data, 1);
        let k = KernelDesc::new("k", 2.0e9, 1.0e8);
        let c = p.add_compute(k.clone(), TaskPhase::Forward, 0, vec![]);
        let ar = p.add_collective(
            CollectiveOp::AllReduce,
            4 << 20,
            TaskPhase::Backward,
            0,
            vec![c],
        );
        let c2 = p.add_compute(k, TaskPhase::Backward, 0, vec![]);
        let _sync = p.add_barrier(TaskPhase::Backward, 0, vec![ar]);
        let _ = c2;
        p.validate().unwrap();
        let shape = TorusShape::new(2, 2, 1).unwrap();
        let report = TrainingSim::from_program(
            SystemConfig::Ace,
            p,
            shape,
            NpuParams::paper_default(),
            NetworkParams::paper_default(),
        )
        .run();
        assert_eq!(report.workload(), "hand-rolled");
        assert!(report.total_cycles() > 0);
        assert_eq!(
            report.total_cycles(),
            report.compute_cycles() + report.exposed_comm_cycles()
        );
    }

    #[test]
    fn model_parallelism_exposes_more_communication_than_data() {
        // Tensor-parallel collectives sit on the critical path in both
        // passes, so their exposed share must exceed data parallelism's
        // on the same layer table.
        let shape = TorusShape::new(4, 2, 2).unwrap();
        let w = Workload::transformer_lm();
        let data = TrainingSim::new(SystemConfig::Ace, w.clone(), shape, 2, false).run();
        let model = TrainingSim::new(
            SystemConfig::Ace,
            w.with_parallelism(Parallelism::Model).unwrap(),
            shape,
            2,
            false,
        )
        .run();
        assert!(
            model.exposed_fraction() > data.exposed_fraction(),
            "model {} vs data {}",
            model.exposed_fraction(),
            data.exposed_fraction()
        );
    }

    #[test]
    fn pipeline_programs_execute_on_all_topology_families() {
        use ace_workloads::PipeSchedule;
        let layers: Vec<Layer> = (0..4)
            .map(|i| {
                Layer::from_fwd(
                    format!("l{i}"),
                    1.0e9,
                    6.4e7,
                    Some(LayerComm {
                        op: CollectiveOp::AllReduce,
                        bytes: 4 << 20,
                    }),
                )
            })
            .collect();
        let w = Workload::data_parallel("pipe4", layers, 1);
        for spec in [
            "torus:4x4x4".parse::<TopologySpec>().unwrap(),
            "switch:64".parse::<TopologySpec>().unwrap(),
            "hier:8x8".parse::<TopologySpec>().unwrap(),
        ] {
            for schedule in [PipeSchedule::GPipe, PipeSchedule::OneFOneB] {
                let par = Parallelism::Pipeline {
                    stages: 4,
                    microbatches: 4,
                    schedule,
                };
                let program = Program::lower(
                    &w,
                    par,
                    &LoweringOptions {
                        iterations: 1,
                        overlap: true,
                    },
                );
                program.validate().unwrap();
                let report = TrainingSim::from_program(
                    SystemConfig::Ace,
                    program,
                    spec,
                    NpuParams::paper_default(),
                    NetworkParams::paper_default(),
                )
                .run();
                assert!(report.total_cycles() > 0, "{spec:?}");
                assert_eq!(
                    report.total_cycles(),
                    report.compute_cycles() + report.exposed_comm_cycles(),
                    "{spec:?}: the identity holds for pipeline runs too"
                );
                assert!(
                    report.network_bytes() > 0,
                    "{spec:?}: boundary transfers must reach the fabric"
                );
            }
        }
    }

    #[test]
    fn lowered_program_is_visible_and_tagged() {
        let shape = TorusShape::new(2, 1, 1).unwrap();
        let sim = TrainingSim::new(SystemConfig::Ace, Workload::dlrm(2), shape, 2, true);
        let p = sim.program();
        p.validate().unwrap();
        assert!(p.carveout().is_some(), "optimized loop loans resources");
        assert_eq!(
            p.task(p.schedule()[0]).role(),
            TaskRole::EmbeddingFwdA2a,
            "iteration 0's exchange is in flight at t = 0"
        );
        assert!(sim.is_hybrid());
    }
}
