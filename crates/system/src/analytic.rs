//! The analytic fidelity tier: engine overheads + closed-form runs.
//!
//! This module is the bridge between the event-driven simulator and the
//! α–β model in [`ace_collectives::analytic`]: it derives each engine's
//! [`EndpointModel`] **from the same parameter structs the event-driven
//! endpoints consume** (Table V/VI resource splits — `BaselineParams`,
//! `AceEndpointParams`, `MemoryParams`, `BusParams`, `SmDriveModel`,
//! `AceConfig`), so a change to the simulated hardware automatically
//! moves the analytic tier too, and offers drop-in analytic counterparts
//! of [`run_single_collective`](crate::run_single_collective) and the
//! training simulator.
//!
//! Accuracy is tracked by the `validate` binary, which runs both tiers
//! over the Fig. 9a grid and the training suite and checks the error
//! table into `BENCH_analytic.json`.

use ace_collectives::analytic::{
    estimate_collective, estimate_collective_degraded, AnalyticEstimate, EndpointModel,
};
use ace_collectives::{CollectiveOp, CollectivePlan};
use ace_compute::{NpuParams, SmDriveModel};
use ace_engine::AceConfig;
use ace_mem::{BusParams, MemoryParams};
use ace_net::{FaultPlan, NetworkParams, TopologySpec};
use ace_workloads::{AnalyticWalk, LoweringOptions, Program, Workload};

use crate::collective_run::EngineKind;
use crate::config::SystemConfig;
use crate::run::{RunConditions, RunError};

/// Derives the α–β endpoint constants for a collective-mode engine.
///
/// This is where the simulator's engine overhead constants surface for
/// the analytic tier: HBM channel widths, SM drive bandwidth, the
/// NPU-AFI bus, the ACE DMA carve-out and SRAM/FSM design point.
pub fn endpoint_model(engine: EngineKind) -> EndpointModel {
    let freq = ace_simcore::npu_frequency();
    let bus = BusParams::paper_default();
    let bus_bpc = freq.bytes_per_cycle(bus.bandwidth_gbps);
    match engine {
        EngineKind::Ideal => EndpointModel::Ideal,
        EngineKind::Baseline {
            comm_mem_gbps,
            comm_sms,
        } => {
            let mem = MemoryParams::paper_default(comm_mem_gbps);
            let drive = SmDriveModel::paper_default();
            EndpointModel::Baseline {
                mem_bytes_per_cycle: freq.bytes_per_cycle(mem.comm_gbps),
                drive_bytes_per_cycle: drive.drive_bytes_per_cycle(comm_sms),
                bus_bytes_per_cycle: bus_bpc,
            }
        }
        EngineKind::Ace { dma_mem_gbps } => ace_model(dma_mem_gbps, AceConfig::paper_default()),
        EngineKind::AceDse {
            dma_mem_gbps,
            sram_mb,
            fsms,
        } => ace_model(dma_mem_gbps, AceConfig::with_dse_point(sram_mb, fsms)),
    }
}

/// Derives the endpoint constants for a training-mode [`SystemConfig`]
/// (the Table VI resource splits).
pub fn config_endpoint_model(config: SystemConfig) -> EndpointModel {
    match config {
        SystemConfig::BaselineNoOverlap => endpoint_model(EngineKind::Baseline {
            comm_mem_gbps: 900.0,
            comm_sms: 80,
        }),
        SystemConfig::BaselineCommOpt => endpoint_model(EngineKind::Baseline {
            comm_mem_gbps: 450.0,
            comm_sms: 6,
        }),
        SystemConfig::BaselineCompOpt => endpoint_model(EngineKind::Baseline {
            comm_mem_gbps: 128.0,
            comm_sms: 2,
        }),
        SystemConfig::Ace => endpoint_model(EngineKind::Ace {
            dma_mem_gbps: 128.0,
        }),
        SystemConfig::Ideal => EndpointModel::Ideal,
    }
}

fn ace_model(dma_mem_gbps: f64, config: AceConfig) -> EndpointModel {
    let freq = ace_simcore::npu_frequency();
    let bus = BusParams::paper_default();
    EndpointModel::Ace {
        dma_bytes_per_cycle: freq.bytes_per_cycle(dma_mem_gbps),
        bus_bytes_per_cycle: freq.bytes_per_cycle(bus.bandwidth_gbps),
        sram_bytes: config.sram_bytes,
        fsms: config.num_fsms,
        fsm_bus_bytes: config.bus_width_bytes,
    }
}

/// The analytic counterpart of a [`CollectiveRunReport`]
/// (fractional-cycle precision; the sweep layer rounds).
///
/// [`CollectiveRunReport`]: crate::CollectiveRunReport
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticCollectiveReport {
    /// Predicted completion time in cycles.
    pub cycles: f64,
    /// Predicted achieved per-NPU network bandwidth, GB/s.
    pub achieved_gbps_per_npu: f64,
    /// Predicted per-node HBM communication traffic, bytes.
    pub mem_traffic_bytes: u64,
    /// Predicted total fabric bytes.
    pub network_bytes: u64,
}

/// Analytic estimate of one standalone collective — the α–β counterpart
/// of [`run_single_collective`](crate::run_single_collective).
pub fn analytic_collective_run(
    topology: impl Into<TopologySpec>,
    engine: EngineKind,
    op: CollectiveOp,
    payload_bytes: u64,
) -> AnalyticCollectiveReport {
    let spec = topology.into();
    let net = NetworkParams::paper_default();
    let plan = CollectivePlan::for_spec(op, spec);
    let model = endpoint_model(engine);
    let est = estimate_collective(&plan, &net, payload_bytes, &model);
    report_from_estimate(&est, spec, &net)
}

/// [`analytic_collective_run`] under explicit [`RunConditions`]: each
/// phase's wire rate is derated by the resolved [`FaultPlan`]'s slowdown
/// (worst surviving-link load, detour congestion included). Stragglers
/// do not apply — a standalone collective has no compute tasks.
pub fn analytic_collective_run_with_conditions(
    topology: impl Into<TopologySpec>,
    engine: EngineKind,
    op: CollectiveOp,
    payload_bytes: u64,
    conditions: &RunConditions,
) -> Result<AnalyticCollectiveReport, RunError> {
    let spec = topology.into();
    if conditions.is_pristine() {
        return Ok(analytic_collective_run(spec, engine, op, payload_bytes));
    }
    let net = NetworkParams::paper_default();
    let fault = conditions.resolve(spec, &net)?;
    let plan = CollectivePlan::for_spec(op, spec);
    let model = endpoint_model(engine);
    let est = if fault.is_pristine() {
        estimate_collective(&plan, &net, payload_bytes, &model)
    } else {
        estimate_collective_degraded(&plan, &net, payload_bytes, &model, &fault)
    };
    Ok(report_from_estimate(&est, spec, &net))
}

fn report_from_estimate(
    est: &AnalyticEstimate,
    spec: TopologySpec,
    net: &NetworkParams,
) -> AnalyticCollectiveReport {
    AnalyticCollectiveReport {
        cycles: est.cycles,
        achieved_gbps_per_npu: est.gbps_per_npu(net),
        mem_traffic_bytes: est.mem_traffic_bytes_per_node.round() as u64,
        network_bytes: (est.network_bytes_per_node * spec.nodes() as f64).round() as u64,
    }
}

/// The analytic counterpart of an [`IterationReport`]
/// (critical-path walk over the lowered [`Program`]).
///
/// [`IterationReport`]: crate::IterationReport
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticTrainingReport {
    /// Predicted end-to-end time in cycles.
    pub total_cycles: f64,
    /// Predicted compute-busy cycles.
    pub compute_cycles: f64,
    /// Predicted exposed-communication cycles.
    pub exposed_cycles: f64,
    /// Predicted per-node HBM communication traffic, bytes.
    pub mem_traffic_bytes: u64,
    /// Predicted total fabric bytes.
    pub network_bytes: u64,
}

/// Analytic estimate of a training run: lowers `workload` exactly like
/// [`TrainingSim::new`](crate::TrainingSim::new) (same
/// [`LoweringOptions`], same Fig. 12 graph transform, same carve-out and
/// roofline kernel model), then walks the program's critical path with
/// α–β collective durations instead of event-driven execution.
pub fn analytic_training_run(
    config: SystemConfig,
    workload: Workload,
    topology: impl Into<TopologySpec>,
    iterations: u32,
    optimized_embedding: bool,
) -> AnalyticTrainingReport {
    let spec = topology.into();
    let opts = LoweringOptions {
        iterations,
        overlap: config.overlaps(),
    };
    let mut program = Program::lower(&workload, workload.parallelism(), &opts);
    if optimized_embedding {
        program.optimize_embedding();
    }
    analytic_program_run(config, &program, spec)
}

/// [`analytic_training_run`] under explicit [`RunConditions`]: the same
/// lowering, then the conditions-aware program walk.
///
/// # Errors
///
/// [`RunError::Fault`] when the fault scenario cannot be applied to the
/// topology (disconnection, no such link, ...).
pub fn analytic_training_run_with_conditions(
    config: SystemConfig,
    workload: Workload,
    topology: impl Into<TopologySpec>,
    iterations: u32,
    optimized_embedding: bool,
    conditions: &RunConditions,
) -> Result<AnalyticTrainingReport, RunError> {
    let spec = topology.into();
    let opts = LoweringOptions {
        iterations,
        overlap: config.overlaps(),
    };
    let mut program = Program::lower(&workload, workload.parallelism(), &opts);
    if optimized_embedding {
        program.optimize_embedding();
    }
    analytic_program_run_with_conditions(config, &program, spec, conditions)
}

/// Analytic estimate of an already-lowered program (the critical-path
/// scheduler behind [`analytic_training_run`]).
pub fn analytic_program_run(
    config: SystemConfig,
    program: &Program,
    topology: impl Into<TopologySpec>,
) -> AnalyticTrainingReport {
    analytic_program_walk(config, program, topology.into(), None)
}

/// [`analytic_program_run`] under explicit [`RunConditions`]: collective
/// durations are derated by the resolved [`FaultPlan`] and the straggler
/// distribution stretches the program's compute kernels exactly as the
/// exact tier does, so `validate` can compare the tiers point-for-point
/// on degraded fabrics.
pub fn analytic_program_run_with_conditions(
    config: SystemConfig,
    program: &Program,
    topology: impl Into<TopologySpec>,
    conditions: &RunConditions,
) -> Result<AnalyticTrainingReport, RunError> {
    let spec = topology.into();
    if conditions.is_pristine() {
        return Ok(analytic_program_walk(config, program, spec, None));
    }
    let net = NetworkParams::paper_default();
    let fault = conditions.resolve(spec, &net)?;
    let mut program = program.clone();
    program.apply_stragglers(&conditions.straggler);
    let fault = (!fault.is_pristine()).then_some(fault);
    Ok(analytic_program_walk(
        config,
        &program,
        spec,
        fault.as_ref(),
    ))
}

fn analytic_program_walk(
    config: SystemConfig,
    program: &Program,
    spec: TopologySpec,
    fault: Option<&FaultPlan>,
) -> AnalyticTrainingReport {
    let net = NetworkParams::paper_default();
    let npu = NpuParams::paper_default();
    let model = config_endpoint_model(config);
    let (sms, mem_gbps) = match program.carveout() {
        Some(c) => (
            config.compute_sms().saturating_sub(c.sms).max(1),
            (config.compute_mem_gbps() - c.mem_gbps).max(1.0),
        ),
        None => (config.compute_sms(), config.compute_mem_gbps()),
    };

    // Lowered programs repeat identical collectives (per-layer backward
    // all-reduces × iterations); the estimate is a pure function of
    // (op, bytes) for the fixed spec/model, so memoize instead of
    // re-planning and re-enumerating routes per task.
    let mut memo: std::collections::HashMap<(CollectiveOp, u64), AnalyticEstimate> =
        std::collections::HashMap::new();
    let mut mem_traffic = 0.0f64;
    let mut network = 0.0f64;
    let walk: AnalyticWalk = program.analytic_walk(
        |kernel| npu.kernel_cycles(kernel, sms, mem_gbps),
        |op, bytes| {
            let est = *memo.entry((op, bytes)).or_insert_with(|| {
                let plan = CollectivePlan::for_spec(op, spec);
                match fault {
                    Some(fp) => estimate_collective_degraded(&plan, &net, bytes, &model, fp),
                    None => estimate_collective(&plan, &net, bytes, &model),
                }
            });
            mem_traffic += est.mem_traffic_bytes_per_node;
            network += est.network_bytes_per_node * spec.nodes() as f64;
            est.cycles
        },
    );
    AnalyticTrainingReport {
        total_cycles: walk.total_cycles,
        compute_cycles: walk.compute_cycles,
        exposed_cycles: walk.exposed_cycles,
        mem_traffic_bytes: mem_traffic.round() as u64,
        network_bytes: network.round() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunSpec;
    use ace_net::TorusShape;

    const MB64: u64 = 64 << 20;

    #[test]
    fn engine_models_track_simulator_constants() {
        let freq = ace_simcore::npu_frequency();
        match endpoint_model(EngineKind::Baseline {
            comm_mem_gbps: 450.0,
            comm_sms: 6,
        }) {
            EndpointModel::Baseline {
                mem_bytes_per_cycle,
                drive_bytes_per_cycle,
                ..
            } => {
                assert!((mem_bytes_per_cycle - freq.bytes_per_cycle(450.0)).abs() < 1e-9);
                assert!((drive_bytes_per_cycle - 6.0 * 64.0).abs() < 1e-9);
            }
            other => panic!("wrong model {other:?}"),
        }
        match endpoint_model(EngineKind::AceDse {
            dma_mem_gbps: 128.0,
            sram_mb: 2,
            fsms: 8,
        }) {
            EndpointModel::Ace {
                sram_bytes, fsms, ..
            } => {
                assert_eq!(sram_bytes, 2 << 20);
                assert_eq!(fsms, 8);
            }
            other => panic!("wrong model {other:?}"),
        }
    }

    #[test]
    fn config_models_match_table_vi() {
        for config in SystemConfig::ALL {
            let m = config_endpoint_model(config);
            match config {
                SystemConfig::Ideal => assert_eq!(m, EndpointModel::Ideal),
                SystemConfig::Ace => assert!(matches!(m, EndpointModel::Ace { .. })),
                _ => assert!(matches!(m, EndpointModel::Baseline { .. })),
            }
        }
    }

    #[test]
    fn fig09a_grid_error_is_within_tolerance() {
        // The headline acceptance bound, in-miniature: the analytic tier
        // lands within 25 % of the exact executor on design-space points.
        let shape = TorusShape::new(4, 2, 2).unwrap();
        for (sram, fsms) in [(1, 16), (2, 8), (4, 16), (4, 4), (8, 20)] {
            let engine = EngineKind::AceDse {
                dma_mem_gbps: 128.0,
                sram_mb: sram,
                fsms,
            };
            let exact = RunSpec::new(shape, engine, CollectiveOp::AllReduce, MB64)
                .run()
                .expect("pristine run cannot fail")
                .completion;
            let analytic =
                analytic_collective_run(shape, engine, CollectiveOp::AllReduce, MB64).cycles;
            let err = (analytic - exact.cycles() as f64).abs() / exact.cycles() as f64;
            assert!(
                err < 0.25,
                "sram={sram} fsms={fsms}: {analytic} vs {} ({:.1}% off)",
                exact.cycles(),
                err * 100.0
            );
        }
    }

    #[test]
    fn training_estimate_tracks_the_simulator() {
        use crate::TrainingSim;
        let shape = TorusShape::new(4, 2, 2).unwrap();
        for config in [SystemConfig::Ace, SystemConfig::BaselineNoOverlap] {
            let exact = TrainingSim::new(config, Workload::resnet50(), shape, 1, false).run();
            let est = analytic_training_run(config, Workload::resnet50(), shape, 1, false);
            // Compute is the shared roofline model: must agree exactly.
            assert_eq!(
                est.compute_cycles,
                exact.compute_cycles() as f64,
                "{config}"
            );
            let err = (est.total_cycles - exact.total_cycles() as f64).abs()
                / exact.total_cycles() as f64;
            assert!(
                err < 0.35,
                "{config}: analytic {} vs exact {} ({:.1}% off)",
                est.total_cycles,
                exact.total_cycles(),
                err * 100.0
            );
        }
    }

    #[test]
    fn no_communication_matches_exactly() {
        // Degenerate case: a program without collectives is pure
        // roofline compute, identical in both tiers.
        use crate::TrainingSim;
        use ace_compute::KernelDesc;
        use ace_workloads::{Parallelism, TaskPhase};
        let mut p = Program::new("compute-only", Parallelism::Data, 1);
        for i in 0..4 {
            p.add_compute(
                KernelDesc::new(format!("k{i}"), 2.0e9, 1.0e8),
                TaskPhase::Forward,
                0,
                vec![],
            );
        }
        let shape = TorusShape::new(2, 1, 1).unwrap();
        let exact = TrainingSim::from_program(
            SystemConfig::Ace,
            p.clone(),
            shape,
            NpuParams::paper_default(),
            NetworkParams::paper_default(),
        )
        .run();
        let est = analytic_program_run(SystemConfig::Ace, &p, shape);
        assert_eq!(est.total_cycles, exact.total_cycles() as f64);
        assert_eq!(est.exposed_cycles, 0.0);
    }
}
