//! The distributed-training system simulator (ASTRA-sim analog).
//!
//! Ties every substrate together: the 3D-torus fabric ([`ace_net`]), the
//! partitioned endpoint memory ([`ace_mem`]), the roofline NPU
//! ([`ace_compute`]), the hierarchical collective plans
//! ([`ace_collectives`]), the ACE engine ([`ace_engine`]) and the endpoint
//! pipelines ([`ace_endpoint`]) — then runs the paper's two-iteration
//! training loop with LIFO collective scheduling over them.
//!
//! * [`SystemConfig`] — the five evaluated endpoint configurations
//!   (Table VI).
//! * [`CollectiveExecutor`] — event-driven, message-granularity execution
//!   of ring and all-to-all collectives across every node.
//! * [`TrainingSim`] / [`SystemBuilder`] — the training loop: forward
//!   passes that block on the previous iteration's all-reduces, backward
//!   passes that emit LIFO-scheduled collectives, DLRM's blocking
//!   all-to-alls, and exposed-communication accounting.
//! * [`RunSpec`] / [`TrainSpec`] — builder-style entry points for
//!   standalone collectives (the harness behind Fig. 5 and Fig. 6) and
//!   training runs, with optional fault/contention/straggler
//!   [`RunConditions`].
//!
//! # Example
//!
//! ```
//! use ace_system::{SystemBuilder, SystemConfig};
//! use ace_workloads::Workload;
//!
//! let report = SystemBuilder::new()
//!     .topology(4, 2, 2)
//!     .config(SystemConfig::Ace)
//!     .workload(Workload::resnet50())
//!     .build()
//!     .unwrap()
//!     .run();
//! assert!(report.iteration_time_us() > 0.0);
//! assert!(report.total_compute_us() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
mod builder;
mod collective_run;
mod config;
mod executor;
mod report;
mod run;
mod training;

pub use analytic::{
    analytic_collective_run, analytic_collective_run_with_conditions, analytic_program_run,
    analytic_program_run_with_conditions, analytic_training_run,
    analytic_training_run_with_conditions, config_endpoint_model, endpoint_model,
    AnalyticCollectiveReport, AnalyticTrainingReport,
};
pub use builder::{BuildError, SystemBuilder};
#[allow(deprecated)]
pub use collective_run::{
    run_single_collective, run_single_collective_traced, run_single_collective_with_options,
    CollectiveRunReport, EngineKind,
};
pub use config::SystemConfig;
pub use executor::{CollHandle, CollectiveExecutor, ExecutorOptions, SchedulingPolicy};
pub use report::IterationReport;
pub use run::{RunConditions, RunError, RunSpec, TrainSpec};
pub use training::TrainingSim;
