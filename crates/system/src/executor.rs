//! Event-driven, message-granularity collective execution across all
//! nodes of the fabric.
//!
//! Each collective payload is split into chunks (Table III) that pipeline
//! independently through the plan's phases (Section IV-E). Ring phases run
//! the classic rotate-reduce chains: every node sends step 0 at phase
//! start, and each arrival triggers the next step's send after the
//! endpoint engine charges its resource costs. Direct all-to-all sends one
//! flow per (source, destination) pair over XYZ routes with per-hop
//! endpoint forwarding. Bidirectional rings are used by alternating chunk
//! parity between the + and − ring directions.
//!
//! Chunk admission into ACE's SRAM partitions applies backpressure;
//! baseline and ideal endpoints admit unconditionally. A global in-flight
//! chunk cap bounds pipelining depth, and pending collectives are drained
//! in LIFO issue order (Section V: "LIFO collective scheduling policy to
//! give more priority to the collectives of first layers during
//! back-propagation").
//!
//! # Hot-path layout
//!
//! The event loop processes tens of millions of events per design-space
//! point, so the per-event state is kept allocation-free: chunk execution
//! state lives in a preallocated arena of reusable slots (the in-flight
//! cap bounds how many are live), per-chunk shard/admission byte sizes
//! are precomputed per phase at issue time, ring neighbors and all-to-all
//! routes are table lookups, and admission waiters queue in sequence-
//! ordered `VecDeque`s. `TryInject` events are coalesced so at most one
//! is pending for any timestamp.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex};

use ace_collectives::{
    partition_bounds, CollectiveOp, CollectivePlan, Granularity, PhaseKind, PhaseLink, PhaseSpec,
};
use ace_endpoint::CollectiveEngine;
use ace_net::{
    FaultPlan, Hop, LinkClass, NetShard, NetTx, Network, NetworkParams, NodeId, Port, Route,
    Topology, TopologySpec,
};
use ace_simcore::{EventQueue, Grant, SimTime};
use ace_trace::{NullTracer, PipeBusy, Tracer, Track};

/// Identifies an issued collective within its executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CollHandle(pub(crate) usize);

/// How pending collectives are drained when injecting chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// Most recently issued first (Section V: prioritizes the first
    /// layers' collectives during back-propagation). The paper's default.
    Lifo,
    /// Oldest first — the ablation comparator.
    Fifo,
}

/// Tunable executor knobs for ablation studies. The defaults reproduce
/// the paper's configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecutorOptions {
    /// Payload → chunk → message decomposition (Table III).
    pub granularity: Granularity,
    /// Collective drain order.
    pub scheduling: SchedulingPolicy,
    /// Whether ring chunks alternate between the two ring directions
    /// (bidirectional rings); `false` sends everything the + way.
    pub bidirectional_rings: bool,
    /// Global cap on in-flight ring chunks.
    pub max_inflight_chunks: usize,
    /// Worker threads for one exact simulation (`1` = serial). The event
    /// loop is partitioned by topology domain and synchronized with
    /// conservative lookahead windows; results are byte-identical to the
    /// serial engine, so this is a wall-clock knob, not a model knob, and
    /// it deliberately does not enter any sweep cache key.
    pub sim_threads: usize,
}

impl Default for ExecutorOptions {
    fn default() -> Self {
        ExecutorOptions {
            granularity: Granularity::paper_default(),
            scheduling: SchedulingPolicy::Lifo,
            bidirectional_rings: true,
            max_inflight_chunks: MAX_INFLIGHT_CHUNKS,
            sim_threads: 1,
        }
    }
}

/// Default cap on globally in-flight ring chunks.
const MAX_INFLIGHT_CHUNKS: usize = 128;
/// Scheduler-lane track for trace events not tied to a node (chunk and
/// phase spans, queue-depth and pipe counters).
const TRACK_SIM: Track = Track { pid: 0, tid: 0 };
/// Event-delivery cadence for queue-depth / pipe-occupancy samples when a
/// recording tracer is attached: one sample every this many pops.
const TRACE_SAMPLE_POPS: u64 = 256;
/// Sentinel: node has not started any phase of a chunk.
const NOT_STARTED: u16 = u16::MAX;
/// Sentinel: chunk has no arena slot assigned.
const NO_SLOT: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Attempt to inject pending chunks (LIFO drain).
    TryInject,
    /// A chunk's TX DMA finished: charge the step-0 fetch and send.
    StepZero {
        coll: u32,
        chunk: u32,
        node: u32,
        phase: u16,
    },
    /// A ring message is ready at the egress port: transmit it.
    ///
    /// All link requests flow through this event so the FIFO link servers
    /// see them in global time order — transmitting directly at an
    /// engine-grant end would future-date reservations and serialize
    /// unrelated traffic behind them.
    Send {
        coll: u32,
        chunk: u32,
        node: u32,
        phase: u16,
        step: u16,
    },
    /// Ring message arrival at `node` for `(coll, chunk)` phase `phase`,
    /// step `step`.
    RingArrive {
        coll: u32,
        chunk: u32,
        node: u32,
        phase: u16,
        step: u16,
    },
    /// A node finished the final arrival processing of `phase`.
    PhaseDone {
        coll: u32,
        chunk: u32,
        node: u32,
        phase: u16,
    },
    /// Terminal RX-DMA drain finished at `node`.
    DrainDone { coll: u32, chunk: u32, node: u32 },
    /// An all-to-all message is ready to transmit hop `hop`.
    A2aSend {
        coll: u32,
        chunk: u32,
        flow: u32,
        hop: u16,
    },
    /// All-to-all flow arrived at hop `hop` of its route.
    A2aHop {
        coll: u32,
        chunk: u32,
        flow: u32,
        hop: u16,
    },
    /// A detoured ring message is ready to transmit hop `hop` of its
    /// fault-plan route. `node` is the detour origin (the sender whose
    /// direct ring link is killed); the route itself lives in the fault
    /// plan keyed by `(dim, direction, node)`.
    DetourSend {
        coll: u32,
        chunk: u32,
        node: u32,
        phase: u16,
        step: u16,
        hop: u16,
    },
    /// A detoured ring message landed at the start of hop `hop`:
    /// store-and-forward at the intermediate endpoint, then send on.
    DetourHop {
        coll: u32,
        chunk: u32,
        node: u32,
        phase: u16,
        step: u16,
        hop: u16,
    },
}

/// Content-derived tie-break key for an event: 64 bits packing the event's
/// identity, with the event kind in the top 4 bits.
///
/// Events at equal times pop in key order regardless of the order they
/// were scheduled in, which is what makes the domain-partitioned engine
/// reproduce the serial engine exactly: the interleaving in which
/// partitions emit events cannot leak into delivery order. `TryInject`
/// never takes a content key — it keeps the queue's plain sequence keys,
/// which stay below `2^60` and therefore sort before every content key at
/// equal times.
///
/// Ring events pack `kind(4) | coll(12) | chunk(18) | node(13) | phase(4)
/// | step(13)`; all-to-all events pack `kind(4) | coll(12) | chunk(18) |
/// flow(24) | hop(6)`. Fields beyond their width are masked: aliased keys
/// only soften tie-breaking between events that would have to collide on
/// every other field, and the key stays a pure function of content either
/// way. The node/flow widths are structural (≤ 8192 nodes for parallel
/// runs) and asserted in debug builds.
fn content_key(ev: &Ev) -> u64 {
    #[inline]
    fn ring(kind: u64, coll: u32, chunk: u32, node: u32, phase: u16, step: u16) -> u64 {
        debug_assert!(
            node < 1 << 13 && phase < 1 << 4 && step < 1 << 13,
            "ring event field exceeds its content-key width"
        );
        kind << 60
            | (coll as u64 & 0xfff) << 48
            | (chunk as u64 & 0x3ffff) << 30
            | (node as u64 & 0x1fff) << 17
            | (phase as u64 & 0xf) << 13
            | (step as u64 & 0x1fff)
    }
    #[inline]
    fn a2a(kind: u64, coll: u32, chunk: u32, flow: u32, hop: u16) -> u64 {
        debug_assert!(
            flow < 1 << 24 && hop < 1 << 6,
            "all-to-all event field exceeds its content-key width"
        );
        kind << 60
            | (coll as u64 & 0xfff) << 48
            | (chunk as u64 & 0x3ffff) << 30
            | (flow as u64 & 0xff_ffff) << 6
            | (hop as u64 & 0x3f)
    }
    match *ev {
        Ev::TryInject => unreachable!("TryInject keeps plain sequence keys"),
        Ev::StepZero {
            coll,
            chunk,
            node,
            phase,
        } => ring(1, coll, chunk, node, phase, 0),
        Ev::Send {
            coll,
            chunk,
            node,
            phase,
            step,
        } => ring(2, coll, chunk, node, phase, step),
        Ev::RingArrive {
            coll,
            chunk,
            node,
            phase,
            step,
        } => ring(3, coll, chunk, node, phase, step),
        Ev::PhaseDone {
            coll,
            chunk,
            node,
            phase,
        } => ring(4, coll, chunk, node, phase, 0),
        Ev::DrainDone { coll, chunk, node } => ring(5, coll, chunk, node, 0, 0),
        Ev::A2aSend {
            coll,
            chunk,
            flow,
            hop,
        } => a2a(6, coll, chunk, flow, hop),
        Ev::A2aHop {
            coll,
            chunk,
            flow,
            hop,
        } => a2a(7, coll, chunk, flow, hop),
        // Detour events fold the hop into the step bits (step in the low
        // 9, hop in the next 4). Detours only exist on faulted fabrics,
        // which always run serially, so the softened tie-breaking from
        // masking is harmless — the key stays a pure function of content.
        Ev::DetourSend {
            coll,
            chunk,
            node,
            phase,
            step,
            hop,
        } => ring(
            8,
            coll,
            chunk,
            node,
            phase,
            (step & 0x1ff) | ((hop & 0xf) << 9),
        ),
        Ev::DetourHop {
            coll,
            chunk,
            node,
            phase,
            step,
            hop,
        } => ring(
            9,
            coll,
            chunk,
            node,
            phase,
            (step & 0x1ff) | ((hop & 0xf) << 9),
        ),
    }
}

/// Where the event handlers schedule follow-up events: the serial
/// engine's global queue, or a partition's local queue plus
/// cross-partition outboxes. `node` is the node that will process the
/// event — its owning partition.
trait EvSink {
    fn emit(&mut self, at: SimTime, node: usize, ev: Ev);
}

impl EvSink for EventQueue<Ev> {
    fn emit(&mut self, at: SimTime, _node: usize, ev: Ev) {
        self.schedule_keyed(at, content_key(&ev), ev);
    }
}

impl<S: EvSink + ?Sized> EvSink for &mut S {
    fn emit(&mut self, at: SimTime, node: usize, ev: Ev) {
        (**self).emit(at, node, ev);
    }
}

/// Per-(slot, node) chunk execution rows as the handlers see them: the
/// serial engine passes the whole arena, a partition worker passes its
/// node range of every slot. Node indices are always global; partitioned
/// implementations subtract their base.
trait ChunkRows {
    fn node_phase(&self, slot: usize, node: usize) -> u16;
    fn set_node_phase(&mut self, slot: usize, node: usize, v: u16);
    fn arr(&self, slot: usize, node: usize) -> u16;
    fn incr_arr(&mut self, slot: usize, node: usize);
    fn reset_arr(&mut self, slot: usize, node: usize);
    fn pending_push(&mut self, slot: usize, node: usize, item: (u16, u16, SimTime));
    /// Moves the buffered arrivals for `phase` into `out`, preserving the
    /// relative order of everything else.
    fn pending_take(
        &mut self,
        slot: usize,
        node: usize,
        phase: u16,
        out: &mut Vec<(u16, u16, SimTime)>,
    );
}

impl ChunkRows for [ChunkState] {
    fn node_phase(&self, slot: usize, node: usize) -> u16 {
        self[slot].node_phase[node]
    }

    fn set_node_phase(&mut self, slot: usize, node: usize, v: u16) {
        self[slot].node_phase[node] = v;
    }

    fn arr(&self, slot: usize, node: usize) -> u16 {
        self[slot].arr_count[node]
    }

    fn incr_arr(&mut self, slot: usize, node: usize) {
        self[slot].arr_count[node] += 1;
    }

    fn reset_arr(&mut self, slot: usize, node: usize) {
        self[slot].arr_count[node] = 0;
    }

    fn pending_push(&mut self, slot: usize, node: usize, item: (u16, u16, SimTime)) {
        self[slot].pending[node].push(item);
    }

    fn pending_take(
        &mut self,
        slot: usize,
        node: usize,
        phase: u16,
        out: &mut Vec<(u16, u16, SimTime)>,
    ) {
        take_phase(&mut self[slot].pending[node], phase, out);
    }
}

impl<R: ChunkRows + ?Sized> ChunkRows for &mut R {
    fn node_phase(&self, slot: usize, node: usize) -> u16 {
        (**self).node_phase(slot, node)
    }

    fn set_node_phase(&mut self, slot: usize, node: usize, v: u16) {
        (**self).set_node_phase(slot, node, v);
    }

    fn arr(&self, slot: usize, node: usize) -> u16 {
        (**self).arr(slot, node)
    }

    fn incr_arr(&mut self, slot: usize, node: usize) {
        (**self).incr_arr(slot, node);
    }

    fn reset_arr(&mut self, slot: usize, node: usize) {
        (**self).reset_arr(slot, node);
    }

    fn pending_push(&mut self, slot: usize, node: usize, item: (u16, u16, SimTime)) {
        (**self).pending_push(slot, node, item);
    }

    fn pending_take(
        &mut self,
        slot: usize,
        node: usize,
        phase: u16,
        out: &mut Vec<(u16, u16, SimTime)>,
    ) {
        (**self).pending_take(slot, node, phase, out);
    }
}

/// Filters `pending` entries matching `phase` into `out` in order.
fn take_phase(
    pending: &mut Vec<(u16, u16, SimTime)>,
    phase: u16,
    out: &mut Vec<(u16, u16, SimTime)>,
) {
    if pending.is_empty() {
        return;
    }
    pending.retain(|&(p, s, at)| {
        if p == phase {
            out.push((p, s, at));
            false
        } else {
            true
        }
    });
}

/// One partition's slice of the arena: for every slot, the node rows of
/// `[base, base + len)`, locally indexed. Built by carving the serial
/// arena's vectors at stint entry and stitched back in partition order at
/// stint exit.
struct SlotRows {
    base: usize,
    node_phase: Vec<Vec<u16>>,
    arr_count: Vec<Vec<u16>>,
    pending: Vec<Vec<Vec<(u16, u16, SimTime)>>>,
}

impl ChunkRows for SlotRows {
    fn node_phase(&self, slot: usize, node: usize) -> u16 {
        self.node_phase[slot][node - self.base]
    }

    fn set_node_phase(&mut self, slot: usize, node: usize, v: u16) {
        self.node_phase[slot][node - self.base] = v;
    }

    fn arr(&self, slot: usize, node: usize) -> u16 {
        self.arr_count[slot][node - self.base]
    }

    fn incr_arr(&mut self, slot: usize, node: usize) {
        self.arr_count[slot][node - self.base] += 1;
    }

    fn reset_arr(&mut self, slot: usize, node: usize) {
        self.arr_count[slot][node - self.base] = 0;
    }

    fn pending_push(&mut self, slot: usize, node: usize, item: (u16, u16, SimTime)) {
        self.pending[slot][node - self.base].push(item);
    }

    fn pending_take(
        &mut self,
        slot: usize,
        node: usize,
        phase: u16,
        out: &mut Vec<(u16, u16, SimTime)>,
    ) {
        take_phase(&mut self.pending[slot][node - self.base], phase, out);
    }
}

/// Completion bookkeeping a handler reports instead of mutating the
/// chunk's global counters directly. The per-chunk `nodes_done` /
/// `flows_done` totals span partitions, so handlers — which may run on a
/// partition worker — emit a notice and the owner of the global state
/// (the serial loop, or the stint coordinator) applies it. Applying a
/// window's notices sorted by `(at, key)` reproduces the serial pop
/// order exactly.
#[derive(Debug, Clone, Copy)]
struct Notice {
    at: SimTime,
    /// Content key of the emitting event.
    key: u64,
    coll: u32,
    chunk: u32,
    kind: NoticeKind,
}

#[derive(Debug, Clone, Copy)]
enum NoticeKind {
    /// A node finished its terminal drain.
    Drain,
    /// An all-to-all flow landed at its destination; carries the chunk's
    /// completion-time candidate (RX-DMA drain end).
    A2aFinal { candidate: SimTime },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CollKind {
    Ring,
    AllToAll,
}

/// Per-chunk, per-node ring execution state. Instances live in the
/// executor's arena and are reused across chunks — the backing vectors
/// are cleared, not reallocated, when a slot is recycled.
#[derive(Debug, Default)]
struct ChunkState {
    /// Current phase per node (`NOT_STARTED` before injection; `P` = in
    /// terminal drain; `P + 1` = done).
    node_phase: Vec<u16>,
    /// Arrivals processed in the current phase, per node.
    arr_count: Vec<u16>,
    /// Buffered early arrivals `(phase, step, time)` per node.
    pending: Vec<Vec<(u16, u16, SimTime)>>,
    /// Nodes that finished the terminal drain.
    nodes_done: usize,
    /// All-to-all: flows completed.
    flows_done: usize,
    /// All-to-all: total flows.
    flows_total: usize,
}

impl ChunkState {
    /// Resets the slot for a fresh chunk over `nodes` nodes, keeping the
    /// vectors' capacity.
    fn reset(&mut self, nodes: usize) {
        self.node_phase.clear();
        self.node_phase.resize(nodes, NOT_STARTED);
        self.arr_count.clear();
        self.arr_count.resize(nodes, 0);
        if self.pending.len() < nodes {
            self.pending.resize_with(nodes, Vec::new);
        }
        for p in self.pending.iter_mut() {
            p.clear();
        }
        self.nodes_done = 0;
        self.flows_done = 0;
        self.flows_total = 0;
    }
}

/// Per-phase constants consulted on every ring event, precomputed at
/// issue time so the event handlers do table lookups instead of
/// re-deriving them from the plan's `PhaseSpec`.
#[derive(Debug, Clone, Copy)]
struct PhaseHot {
    /// Algorithm of the phase.
    kind: PhaseKind,
    /// Ring participant count.
    ring_k: u16,
    /// Last step index of the phase's rotate chain.
    final_step: u16,
    /// Topology dimension the phase rings over (indexes the executor's
    /// neighbor table).
    dim: u16,
    /// Egress port index (`Port::index()`) for even (+) chunks.
    port_idx_plus: u8,
    /// Egress port index for odd (−) chunks.
    port_idx_minus: u8,
}

#[derive(Debug)]
struct Coll {
    plan: CollectivePlan,
    kind: CollKind,
    chunk_sizes: Vec<u64>,
    issued_at: SimTime,
    next_chunk: usize,
    /// Global injection sequence per chunk (assigned at injection).
    chunk_seq: Vec<u64>,
    /// Arena slot per chunk (`NO_SLOT` when the chunk is not in flight).
    chunk_slot: Vec<u32>,
    done_chunks: usize,
    completed_at: Option<SimTime>,
    /// Whether the trailing chunk is shorter than the others (selects the
    /// second column of the byte caches).
    short_last: bool,
    /// Per-phase event-handler constants (ring phases only).
    phase_hot: Vec<PhaseHot>,
    /// Per-phase ring shard bytes, laid out `phase * 2 + short`.
    shard_cache: Vec<u64>,
    /// Per-phase admission bytes (incl. the terminal partition at index
    /// `phases * 2 + short`), same layout.
    admit_cache: Vec<u64>,
    /// All-to-all: number of leading destination offsets carrying one
    /// extra payload byte (`payload % nodes` remainder distribution).
    a2a_extra: u64,
}

impl Coll {
    fn is_complete(&self) -> bool {
        self.completed_at.is_some()
    }

    /// Byte-cache column for `chunk`: 1 for the short trailing chunk.
    fn short_idx(&self, chunk: usize) -> usize {
        usize::from(self.short_last && chunk + 1 == self.chunk_sizes.len())
    }
}

/// Waiting admission entry: chunk waiting for space in a phase partition.
#[derive(Debug, Clone, Copy)]
struct Waiter {
    coll: u32,
    chunk: u32,
    /// Phase whose partition is still held (released on success);
    /// `NOT_STARTED` when nothing is held (initial injection).
    held_phase: u16,
}

/// The event-handler state machine, factored out of the executor so the
/// same handler code runs in two homes: the serial loop (global queue,
/// whole network, whole arena) and a partition worker (local queue +
/// outboxes, network shard, arena slice). Everything the handlers can
/// touch is per-node state owned by exactly one partition; the only
/// global effects — chunk completion counting — leave through `notices`.
struct ExecCtx<'a, E, S, N, R, TT> {
    nodes: usize,
    options: ExecutorOptions,
    colls: &'a [Coll],
    dim_nbrs: &'a [NodeId],
    a2a_routes: &'a [Route],
    /// The degradation plan, when the fabric is faulted: ring sends whose
    /// direct link is killed consult its detour routes. `None` on
    /// pristine fabrics and always `None` in parallel stints (faulted
    /// runs are pinned to the serial loop).
    fault: Option<&'a FaultPlan>,
    engines: &'a mut [E],
    admit_wait: &'a mut [Vec<VecDeque<(u64, Waiter)>>],
    /// Global node id of `engines[0]` / `admit_wait[0]` (0 serially).
    base: usize,
    rows: R,
    scratch: &'a mut Vec<(u16, u16, SimTime)>,
    sink: S,
    net: N,
    notices: &'a mut Vec<Notice>,
    tracer: &'a mut TT,
}

/// Arena slot of a live chunk.
fn chunk_slot_of(coll: &Coll, chunk: usize) -> usize {
    let slot = coll.chunk_slot[chunk];
    debug_assert_ne!(slot, NO_SLOT, "chunk state accessed outside its lifetime");
    slot as usize
}

/// Bytes a chunk occupies in the partition of `phase` (`P` = terminal).
fn admit_bytes_of(coll: &Coll, chunk: usize, phase: u16) -> u64 {
    coll.admit_cache[phase as usize * 2 + coll.short_idx(chunk)]
}

/// Per-node shard size moved in one ring step of `phase`.
fn shard_bytes_of(coll: &Coll, chunk: usize, phase: u16) -> u64 {
    coll.shard_cache[phase as usize * 2 + coll.short_idx(chunk)]
}

/// Bytes flow `flow` carries for `chunk`: the chunk's share of the
/// per-destination slice, plus one remainder byte on the last chunk of
/// the first `payload % nodes` destination offsets. Summed over a
/// source's flows and its local slice this reproduces the original
/// payload exactly (byte conservation).
fn a2a_flow_bytes_of(coll: &Coll, nodes: usize, chunk: usize, flow: usize) -> u64 {
    let off = (flow % (nodes - 1)) as u64;
    let last = chunk + 1 == coll.chunk_sizes.len();
    coll.chunk_sizes[chunk] + u64::from(last && off < coll.a2a_extra)
}

impl<E, S, N, R, TT> ExecCtx<'_, E, S, N, R, TT>
where
    E: CollectiveEngine,
    S: EvSink,
    N: NetTx,
    R: ChunkRows,
    TT: Tracer,
{
    fn engine(&mut self, node: usize) -> &mut E {
        &mut self.engines[node - self.base]
    }

    fn dispatch(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::TryInject => unreachable!("TryInject is handled by the executor's serial loop"),
            Ev::StepZero {
                coll,
                chunk,
                node,
                phase,
            } => {
                self.step_zero(now, coll as usize, chunk as usize, node as usize, phase);
            }
            Ev::Send {
                coll,
                chunk,
                node,
                phase,
                step,
            } => {
                self.ring_send(
                    now,
                    coll as usize,
                    chunk as usize,
                    node as usize,
                    phase,
                    step,
                );
            }
            Ev::RingArrive {
                coll,
                chunk,
                node,
                phase,
                step,
            } => {
                self.ring_arrive(
                    now,
                    coll as usize,
                    chunk as usize,
                    node as usize,
                    phase,
                    step,
                );
            }
            Ev::PhaseDone {
                coll,
                chunk,
                node,
                phase,
            } => {
                self.phase_done(now, coll as usize, chunk as usize, node as usize, phase);
            }
            Ev::DrainDone { coll, chunk, node } => {
                self.drain_done(now, coll as usize, chunk as usize, node as usize);
            }
            Ev::A2aSend {
                coll,
                chunk,
                flow,
                hop,
            } => {
                self.a2a_send(
                    now,
                    coll as usize,
                    chunk as usize,
                    flow as usize,
                    hop as usize,
                );
            }
            Ev::A2aHop {
                coll,
                chunk,
                flow,
                hop,
            } => {
                self.a2a_hop(
                    now,
                    coll as usize,
                    chunk as usize,
                    flow as usize,
                    hop as usize,
                );
            }
            Ev::DetourSend {
                coll,
                chunk,
                node,
                phase,
                step,
                hop,
            } => {
                self.detour_send(
                    now,
                    coll as usize,
                    chunk as usize,
                    node as usize,
                    phase,
                    step,
                    hop as usize,
                );
            }
            Ev::DetourHop {
                coll,
                chunk,
                node,
                phase,
                step,
                hop,
            } => {
                self.detour_hop(
                    now,
                    coll as usize,
                    chunk as usize,
                    node as usize,
                    phase,
                    step,
                    hop as usize,
                );
            }
        }
    }

    /// Requests admission into `phase` for `(cid, chunk)` at `node`,
    /// releasing `held_phase` on success. Queues a waiter on failure or
    /// when earlier-sequence chunks are already waiting for the same
    /// partition (strict global admission order; see `admit_wait`).
    fn request_phase(
        &mut self,
        now: SimTime,
        cid: usize,
        chunk: usize,
        node: usize,
        phase: u16,
        held_phase: u16,
    ) {
        let p = phase as usize;
        let aw = &mut self.admit_wait[node - self.base];
        if aw.len() <= p {
            aw.resize_with(p + 1, VecDeque::new);
        }
        let bytes = admit_bytes_of(&self.colls[cid], chunk, phase);
        if self.admit_wait[node - self.base][p].is_empty()
            && self.engine(node).try_admit(p, bytes, now)
        {
            if held_phase != NOT_STARTED {
                let held_bytes = admit_bytes_of(&self.colls[cid], chunk, held_phase);
                self.engine(node)
                    .release(held_phase as usize, held_bytes, now);
                self.retry_waiters(now, node);
            }
            self.start_phase(now, cid, chunk, node, phase);
        } else {
            let seq = self.colls[cid].chunk_seq[chunk];
            debug_assert_ne!(seq, u64::MAX, "chunk admitted before injection");
            let w = Waiter {
                coll: cid as u32,
                chunk: chunk as u32,
                held_phase,
            };
            let q = &mut self.admit_wait[node - self.base][p];
            // Waiters almost always arrive in sequence order; fall back to
            // a sorted insert for the cross-phase stragglers.
            if q.back().is_none_or(|&(s, _)| s < seq) {
                q.push_back((seq, w));
            } else {
                let pos = q.partition_point(|&(s, _)| s < seq);
                q.insert(pos, (seq, w));
            }
        }
    }

    /// Retries queued admissions at `node` after a partition release.
    ///
    /// Per phase, waiters are admitted strictly in global sequence order,
    /// stopping at the first that does not fit. A successful waiter
    /// releases the partition it held, which can unblock waiters of
    /// another phase — passes repeat until no progress is made.
    fn retry_waiters(&mut self, now: SimTime, node: usize) {
        let ln = node - self.base;
        loop {
            let mut progress = false;
            for p in 0..self.admit_wait[ln].len() {
                while let Some(&(_, w)) = self.admit_wait[ln][p].front() {
                    let bytes =
                        admit_bytes_of(&self.colls[w.coll as usize], w.chunk as usize, p as u16);
                    if !self.engine(node).try_admit(p, bytes, now) {
                        break;
                    }
                    self.admit_wait[ln][p].pop_front();
                    if w.held_phase != NOT_STARTED {
                        let held = admit_bytes_of(
                            &self.colls[w.coll as usize],
                            w.chunk as usize,
                            w.held_phase,
                        );
                        self.engine(node).release(w.held_phase as usize, held, now);
                    }
                    progress = true;
                    self.start_phase(now, w.coll as usize, w.chunk as usize, node, p as u16);
                }
            }
            if !progress {
                break;
            }
        }
    }

    /// Phase entry: run the TX DMA for phase 0, kick off the terminal
    /// drain for phase `P`, otherwise send ring step 0.
    fn start_phase(&mut self, now: SimTime, cid: usize, chunk: usize, node: usize, phase: u16) {
        let n_phases = self.colls[cid].plan.phases().len() as u16;
        // Phase lifetimes are traced from node 0's perspective: one
        // async span per (collective, chunk, phase), not per node.
        if self.tracer.enabled() && node == 0 && phase < n_phases {
            self.tracer
                .begin(TRACK_SIM, "phase", phase_trace_id(cid, chunk, phase), now);
        }
        let slot = chunk_slot_of(&self.colls[cid], chunk);
        self.rows.set_node_phase(slot, node, phase);
        self.rows.reset_arr(slot, node);
        if phase == n_phases {
            // Terminal drain: RX DMA back to HBM.
            let bytes = admit_bytes_of(&self.colls[cid], chunk, phase);
            let done = self.engine(node).chunk_complete(now, bytes);
            self.sink.emit(
                done.max(now),
                node,
                Ev::DrainDone {
                    coll: cid as u32,
                    chunk: chunk as u32,
                    node: node as u32,
                },
            );
            return;
        }
        if phase == 0 {
            // TX DMA stages the chunk into the engine; the step-0 send
            // fires when the data is resident.
            let size = self.colls[cid].chunk_sizes[chunk];
            let staged = self.engine(node).chunk_inject(now, size);
            self.sink.emit(
                staged.max(now),
                node,
                Ev::StepZero {
                    coll: cid as u32,
                    chunk: chunk as u32,
                    node: node as u32,
                    phase,
                },
            );
        } else {
            self.step_zero(now, cid, chunk, node, phase);
        }
        // Replay any arrivals buffered for this phase.
        self.replay_pending(now, cid, chunk, node, phase);
    }

    /// Charges the step-0 fetch and schedules its transmission.
    fn step_zero(&mut self, now: SimTime, cid: usize, chunk: usize, node: usize, phase: u16) {
        let shard = shard_bytes_of(&self.colls[cid], chunk, phase);
        let ready = self.engine(node).fetch_and_send(now, shard, phase as usize);
        self.sink.emit(
            ready.max(now),
            node,
            Ev::Send {
                coll: cid as u32,
                chunk: chunk as u32,
                node: node as u32,
                phase,
                step: 0,
            },
        );
    }

    fn replay_pending(&mut self, now: SimTime, cid: usize, chunk: usize, node: usize, phase: u16) {
        let mut scratch = std::mem::take(self.scratch);
        scratch.clear();
        let slot = chunk_slot_of(&self.colls[cid], chunk);
        self.rows.pending_take(slot, node, phase, &mut scratch);
        for &(p, s, at) in &scratch {
            self.ring_arrive(now.max(at), cid, chunk, node, p, s);
        }
        scratch.clear();
        *self.scratch = scratch;
    }

    /// Records a link busy span from a transmit grant on the sending
    /// node's per-port lane. The span's integer `[start, end)` service
    /// window is exactly what the network's utilization meter credits, so
    /// summing recorded `link:` spans reproduces
    /// [`Network::util_busy_total_cycles`] — the reconciliation the trace
    /// property tests enforce.
    #[inline]
    fn trace_link(&mut self, node: usize, port_idx: usize, grant: Grant) {
        if self.tracer.enabled() {
            self.tracer.span(
                Track {
                    pid: 1 + node as u32,
                    tid: port_idx as u32,
                },
                &format!("link:n{node}:p{port_idx}"),
                grant.start,
                grant.end,
            );
        }
    }

    /// Transmits a ring message for step `step` of `phase` from `node` to
    /// its ring neighbor, scheduling the arrival event. Runs as the `Send`
    /// event handler so link requests are issued in global time order.
    fn ring_send(
        &mut self,
        now: SimTime,
        cid: usize,
        chunk: usize,
        node: usize,
        phase: u16,
        step: u16,
    ) {
        let bytes = shard_bytes_of(&self.colls[cid], chunk, phase);
        let hot = self.colls[cid].phase_hot[phase as usize];
        // Bidirectional rings: alternate chunk parity across directions
        // (unidirectional mode sends everything the + way — an ablation).
        let plus = !self.options.bidirectional_rings || chunk.is_multiple_of(2);
        let (port_idx, dir) = if plus {
            (hot.port_idx_plus as usize, 0)
        } else {
            (hot.port_idx_minus as usize, 1)
        };
        let dst = self.dim_nbrs[(hot.dim as usize * 2 + dir) * self.nodes + node];
        // On a faulted fabric the direct ring link may be killed: the
        // fault plan then carries a BFS detour route to the same ring
        // neighbor, and the message travels it hop by hop instead.
        if let Some(fp) = self.fault {
            if fp
                .ring_detour(hot.dim as usize, plus, NodeId(node))
                .is_some()
            {
                self.detour_send(now, cid, chunk, node, phase, step, 0);
                return;
            }
        }
        let out = self
            .net
            .transmit(now, NodeId(node), Port::from_index(port_idx), bytes);
        self.trace_link(node, port_idx, out.grant);
        self.sink.emit(
            out.arrival,
            dst.index(),
            Ev::RingArrive {
                coll: cid as u32,
                chunk: chunk as u32,
                node: dst.index() as u32,
                phase,
                step,
            },
        );
    }

    /// The fault-plan detour route for a ring send from `node` (the hop
    /// at `hop` plus whether it is the last), looked up by the sending
    /// chunk's ring direction.
    fn detour_hop_at(
        &self,
        cid: usize,
        chunk: usize,
        node: usize,
        phase: u16,
        hop: usize,
    ) -> (Hop, bool) {
        let hot = self.colls[cid].phase_hot[phase as usize];
        let plus = !self.options.bidirectional_rings || chunk.is_multiple_of(2);
        let route = self
            .fault
            .expect("detour events only exist on faulted fabrics")
            .ring_detour(hot.dim as usize, plus, NodeId(node))
            .expect("detour event for an intact ring link");
        (route[hop], hop + 1 == route.len())
    }

    /// Transmits hop `hop` of a detoured ring message. The final hop
    /// lands as an ordinary `RingArrive` at the ring neighbor, so the
    /// receiving state machine cannot tell a detour from a direct send.
    #[allow(clippy::too_many_arguments)]
    fn detour_send(
        &mut self,
        now: SimTime,
        cid: usize,
        chunk: usize,
        node: usize,
        phase: u16,
        step: u16,
        hop: usize,
    ) {
        let bytes = shard_bytes_of(&self.colls[cid], chunk, phase);
        let (h, last) = self.detour_hop_at(cid, chunk, node, phase, hop);
        let out = self.net.transmit(now, h.from, h.port, bytes);
        self.trace_link(h.from.index(), h.port.index(), out.grant);
        if last {
            self.sink.emit(
                out.arrival,
                h.to.index(),
                Ev::RingArrive {
                    coll: cid as u32,
                    chunk: chunk as u32,
                    node: h.to.index() as u32,
                    phase,
                    step,
                },
            );
        } else {
            self.sink.emit(
                out.arrival,
                h.to.index(),
                Ev::DetourHop {
                    coll: cid as u32,
                    chunk: chunk as u32,
                    node: node as u32,
                    phase,
                    step,
                    hop: hop as u16 + 1,
                },
            );
        }
    }

    /// A detoured ring message landed at an intermediate endpoint:
    /// charge the store-and-forward cost there, then transmit the next
    /// hop.
    #[allow(clippy::too_many_arguments)]
    fn detour_hop(
        &mut self,
        now: SimTime,
        cid: usize,
        chunk: usize,
        node: usize,
        phase: u16,
        step: u16,
        hop: usize,
    ) {
        let bytes = shard_bytes_of(&self.colls[cid], chunk, phase);
        let (h, _) = self.detour_hop_at(cid, chunk, node, phase, hop);
        let at = h.from.index();
        let ready = self
            .engine(at)
            .store_and_forward(now, bytes, phase as usize);
        self.sink.emit(
            ready.max(now),
            at,
            Ev::DetourSend {
                coll: cid as u32,
                chunk: chunk as u32,
                node: node as u32,
                phase,
                step,
                hop: hop as u16,
            },
        );
    }

    fn ring_arrive(
        &mut self,
        now: SimTime,
        cid: usize,
        chunk: usize,
        node: usize,
        phase: u16,
        step: u16,
    ) {
        // Buffer arrivals for phases the node has not entered yet.
        let slot = chunk_slot_of(&self.colls[cid], chunk);
        let np = self.rows.node_phase(slot, node);
        if np == NOT_STARTED || np < phase {
            self.rows.pending_push(slot, node, (phase, step, now));
            return;
        }
        debug_assert_eq!(np, phase, "arrival for a past phase");
        // Steps of one phase normally land in order (sends are chained
        // and links are FIFO), but a fault-plan detour's intermediate
        // store-and-forward can grant a later step an earlier finish on
        // a multi-lane engine. Hold a future step until its
        // predecessors have been consumed; the trailing replay below
        // drains it as soon as the gap closes.
        let expected = self.rows.arr(slot, node);
        if step > expected {
            self.rows.pending_push(slot, node, (phase, step, now));
            return;
        }
        debug_assert_eq!(step, expected, "duplicate ring arrival");
        self.rows.incr_arr(slot, node);
        let hot = self.colls[cid].phase_hot[phase as usize];
        let k = hot.ring_k;
        let final_step = hot.final_step;
        let shard = shard_bytes_of(&self.colls[cid], chunk, phase);
        let engine = self.engine(node);
        // The landing write and the processing of the step pipeline
        // through independent resources; both are charged at the arrival
        // time and the step completes when the slowest finishes.
        let landed = engine.receive(now, shard, phase as usize);
        let reduces = match hot.kind {
            PhaseKind::ReduceScatter => true,
            PhaseKind::AllGather => false,
            PhaseKind::RingAllReduce => step <= k - 2,
            PhaseKind::DirectAllToAll => false,
        };
        if step < final_step {
            let ready = if reduces {
                engine.reduce_and_send(now, shard, phase as usize)
            } else {
                engine.fetch_and_send(now, shard, phase as usize)
            };
            self.sink.emit(
                ready.max(landed).max(now),
                node,
                Ev::Send {
                    coll: cid as u32,
                    chunk: chunk as u32,
                    node: node as u32,
                    phase,
                    step: step + 1,
                },
            );
        } else {
            // Final arrival of the phase.
            let done = if reduces {
                engine.reduce_and_store(now, shard, phase as usize)
            } else {
                landed
            };
            self.sink.emit(
                done.max(now),
                node,
                Ev::PhaseDone {
                    coll: cid as u32,
                    chunk: chunk as u32,
                    node: node as u32,
                    phase,
                },
            );
        }
        // A reordered successor step may be waiting on the one just
        // consumed (no-op on the pristine fast path: pending is empty).
        self.replay_pending(now, cid, chunk, node, phase);
    }

    fn phase_done(&mut self, now: SimTime, cid: usize, chunk: usize, node: usize, phase: u16) {
        if self.tracer.enabled() && node == 0 {
            self.tracer
                .end(TRACK_SIM, "phase", phase_trace_id(cid, chunk, phase), now);
        }
        let next = phase + 1;
        self.request_phase(now, cid, chunk, node, next, phase);
    }

    fn drain_done(&mut self, now: SimTime, cid: usize, chunk: usize, node: usize) {
        let n_phases = self.colls[cid].plan.phases().len() as u16;
        let terminal_bytes = admit_bytes_of(&self.colls[cid], chunk, n_phases);
        self.engine(node)
            .release(n_phases as usize, terminal_bytes, now);
        self.retry_waiters(now, node);
        let slot = chunk_slot_of(&self.colls[cid], chunk);
        self.rows.set_node_phase(slot, node, n_phases + 1);
        let ev = Ev::DrainDone {
            coll: cid as u32,
            chunk: chunk as u32,
            node: node as u32,
        };
        self.notices.push(Notice {
            at: now,
            key: content_key(&ev),
            coll: cid as u32,
            chunk: chunk as u32,
            kind: NoticeKind::Drain,
        });
    }

    /// Transmits hop `hop` of an all-to-all flow at event time.
    fn a2a_send(&mut self, now: SimTime, cid: usize, chunk: usize, flow: usize, hop: usize) {
        let bytes = a2a_flow_bytes_of(&self.colls[cid], self.nodes, chunk, flow);
        let routes = self.a2a_routes;
        let h = routes[flow][hop];
        let out = self.net.transmit(now, h.from, h.port, bytes);
        self.trace_link(h.from.index(), h.port.index(), out.grant);
        // The next event runs where the message lands: `h.to` starts the
        // next hop (routes are contiguous) or is the final destination.
        self.sink.emit(
            out.arrival,
            h.to.index(),
            Ev::A2aHop {
                coll: cid as u32,
                chunk: chunk as u32,
                flow: flow as u32,
                hop: hop as u16 + 1,
            },
        );
    }

    fn a2a_hop(&mut self, now: SimTime, cid: usize, chunk: usize, flow: usize, hop: usize) {
        let bytes = a2a_flow_bytes_of(&self.colls[cid], self.nodes, chunk, flow);
        let routes = self.a2a_routes;
        let route = &routes[flow];
        if hop < route.len() {
            // Intermediate endpoint: store-and-forward, then next hop.
            let at = route[hop].from.index();
            let ready = self.engine(at).store_and_forward(now, bytes, 0);
            self.sink.emit(
                ready.max(now),
                at,
                Ev::A2aSend {
                    coll: cid as u32,
                    chunk: chunk as u32,
                    flow: flow as u32,
                    hop: hop as u16,
                },
            );
        } else {
            // Final arrival at the destination.
            let dst = route.last().expect("route nonempty").to.index();
            let landed = self.engine(dst).receive(now, bytes, 0);
            let done = self.engine(dst).chunk_complete(landed, bytes);
            let ev = Ev::A2aHop {
                coll: cid as u32,
                chunk: chunk as u32,
                flow: flow as u32,
                hop: hop as u16,
            };
            self.notices.push(Notice {
                at: now,
                key: content_key(&ev),
                coll: cid as u32,
                chunk: chunk as u32,
                kind: NoticeKind::A2aFinal {
                    candidate: done.max(now),
                },
            });
        }
    }
}

// ---------------------------------------------------------------------
// Parallel stint machinery
// ---------------------------------------------------------------------

/// A cross-partition event in flight: `(arrival time, content key, event)`.
type CrossMsg = (SimTime, u64, Ev);

/// Event sink for a partition worker: events owned by this partition go
/// straight into the local queue; events owned by another partition are
/// staged in the per-destination outbox and delivered at the window
/// barrier. The lookahead guarantees remote arrivals land at or beyond
/// the window end, so late delivery never reorders anything.
struct PartSink<'a> {
    queue: &'a mut EventQueue<Ev>,
    outbox: &'a mut [Vec<CrossMsg>],
    node_part: &'a [u32],
    me: usize,
}

impl EvSink for PartSink<'_> {
    fn emit(&mut self, at: SimTime, node: usize, ev: Ev) {
        let part = self.node_part[node] as usize;
        if part == self.me {
            self.queue.schedule_keyed(at, content_key(&ev), ev);
        } else {
            self.outbox[part].push((at, content_key(&ev), ev));
        }
    }
}

/// The node whose partition processes `ev` — the same node the handlers
/// charge engine costs on.
fn ev_owner(a2a_routes: &[Route], ev: &Ev) -> usize {
    match ev {
        Ev::StepZero { node, .. }
        | Ev::Send { node, .. }
        | Ev::RingArrive { node, .. }
        | Ev::PhaseDone { node, .. }
        | Ev::DrainDone { node, .. } => *node as usize,
        Ev::A2aSend { flow, hop, .. } => a2a_routes[*flow as usize][*hop as usize].from.index(),
        Ev::A2aHop { flow, hop, .. } => {
            let route = &a2a_routes[*flow as usize];
            let h = *hop as usize;
            if h < route.len() {
                route[h].from.index()
            } else {
                route.last().expect("route nonempty").to.index()
            }
        }
        Ev::DetourSend { .. } | Ev::DetourHop { .. } => {
            unreachable!("detour events only exist on faulted (serial-only) runs")
        }
        Ev::TryInject => unreachable!("TryInject cannot be pending during a parallel stint"),
    }
}

/// Precomputed parallel-execution plan: contiguous domain partitions,
/// the node → partition map, and the conservative lookahead (cycles)
/// from the cheapest partition-crossing link.
struct ParPlan {
    bounds: Vec<(usize, usize)>,
    node_part: Vec<u32>,
    lookahead: u64,
}

/// Whether a fan-out (crossbar) link at `node` can reach another
/// partition. On a hierarchical fabric the crossbar only spans the
/// node's scale-up domain, so a partition that contains the whole domain
/// contains all its crossbar traffic; any other fan-out link is assumed
/// to reach everywhere.
fn fanout_crosses(spec: &TopologySpec, node: usize, node_part: &[u32]) -> bool {
    match *spec {
        TopologySpec::Hierarchical { scale_up, .. } => {
            let su = (scale_up as usize).max(1);
            let lo = node - node % su;
            let p = node_part[lo];
            node_part[lo..lo + su].iter().any(|&q| q != p)
        }
        _ => true,
    }
}

/// The conservative lookahead: the smallest propagation latency of any
/// link whose traffic can cross a partition boundary. Every event a
/// worker processes in a window `[w0, w1)` with `w1 <= min_next + L`
/// produces remote arrivals at `>= t + L >= min_next + L >= w1`, so
/// barrier-delivered messages never land inside a window already
/// processed — the protocol's safety argument.
fn lookahead_cycles(net: &Network, node_part: &[u32]) -> u64 {
    let topo = net.topology();
    let spec = topo.spec();
    let mut min_lat = u64::MAX / 2;
    for node in 0..topo.nodes() {
        for p in 0..topo.ports_per_node() {
            let port = Port::from_index(p);
            let Some(link) = net.link(NodeId(node), port) else {
                continue;
            };
            let crosses = match topo.link_peer(NodeId(node), port) {
                Some(peer) => node_part[peer.index()] != node_part[node],
                None => fanout_crosses(&spec, node, node_part),
            };
            if crosses {
                min_lat = min_lat.min(link.params().latency_cycles);
            }
        }
    }
    min_lat
}

/// Builds the partition plan for `threads` workers over `net`'s
/// topology, or `None` when partitioning cannot work: one thread, a
/// sub-2-node fabric, no ring dimension to derive an alignment from, a
/// single resulting partition, or zero-latency crossing links (no
/// lookahead to hide the synchronization behind).
fn partition_plan(net: &Network, threads: usize) -> Option<ParPlan> {
    if threads <= 1 {
        return None;
    }
    let topo = net.topology();
    let nodes = topo.nodes();
    if nodes < 2 {
        return None;
    }
    let dims = topo.dims();
    // Boundary stride: the node-id stride of the outermost ring
    // dimension, so aligned boundaries are only crossed by that
    // dimension's (slow, high-latency) links.
    let outer = dims.iter().rposition(|d| d.len > 1)?;
    let align: usize = dims[..outer].iter().map(|d| d.len).product();
    let bounds = partition_bounds(nodes, threads, align.max(1));
    if bounds.len() < 2 {
        return None;
    }
    let mut node_part = vec![0u32; nodes];
    for (i, &(lo, hi)) in bounds.iter().enumerate() {
        node_part[lo..hi].fill(i as u32);
    }
    let lookahead = lookahead_cycles(net, &node_part);
    if lookahead == 0 {
        return None;
    }
    Some(ParPlan {
        bounds,
        node_part,
        lookahead,
    })
}

/// Splits `items` into per-partition mutable slices along `bounds`.
fn split_by_bounds<'s, X>(items: &'s mut [X], bounds: &[(usize, usize)]) -> Vec<&'s mut [X]> {
    let mut out = Vec::with_capacity(bounds.len());
    let mut rest = items;
    let mut covered = 0usize;
    for &(lo, hi) in bounds {
        debug_assert_eq!(lo, covered, "bounds must tile the items");
        let (head, tail) = rest.split_at_mut(hi - lo);
        out.push(head);
        rest = tail;
        covered = hi;
    }
    debug_assert!(rest.is_empty(), "bounds must cover every item");
    out
}

/// End-of-window report a worker posts for the coordinator.
#[derive(Default)]
struct Report {
    /// Earliest pending event after mailbox delivery (`None` = idle).
    next: Option<SimTime>,
    /// Completion notices emitted during the window.
    notices: Vec<Notice>,
}

/// The coordinator's verdict for the next window.
#[derive(Clone, Copy)]
struct Cmd {
    stop: bool,
    /// Exclusive end of the next processing window.
    window: SimTime,
}

/// State shared by every worker of one parallel stint.
struct StintShared<'a> {
    nodes: usize,
    options: ExecutorOptions,
    colls: &'a [Coll],
    dim_nbrs: &'a [NodeId],
    a2a_routes: &'a [Route],
    node_part: &'a [u32],
    lookahead: u64,
    barrier: Barrier,
    /// `mailboxes[dst][src]`: events bound for partition `dst`.
    mailboxes: Vec<Vec<Mutex<Vec<CrossMsg>>>>,
    reports: Vec<Mutex<Report>>,
    cmd: Mutex<Cmd>,
    /// Set when any worker's window panicked; the stint stops at the
    /// next barrier and the payload is rethrown after merge.
    poisoned: AtomicBool,
}

/// One partition's private stint state: its event queue, its node range
/// of the engines / admission queues / arena rows, and its network
/// shard.
struct Worker<'w, E> {
    me: usize,
    base: usize,
    queue: EventQueue<Ev>,
    engines: &'w mut [E],
    admit: &'w mut [Vec<VecDeque<(u64, Waiter)>>],
    rows: SlotRows,
    shard: NetShard<'w>,
    outbox: Vec<Vec<CrossMsg>>,
    scratch: Vec<(u16, u16, SimTime)>,
    notices: Vec<Notice>,
}

/// Serializes cross-partition completion counting so it reproduces the
/// serial order: each window's notices, gathered from every worker and
/// sorted by `(time, content key)`, are applied to a snapshot of the
/// per-slot counters exactly as the serial loop would have popped the
/// emitting events.
struct Coordinator {
    nodes: usize,
    /// Per-slot `(nodes_done, flows_done)` snapshot.
    counts: Vec<(usize, usize)>,
    flows_total: Vec<usize>,
    /// Target chunks still incomplete; the stint stops at zero.
    chunks_left: usize,
    /// Completions in serial order: `(coll, chunk, completion time)`.
    completions: Vec<(u32, u32, SimTime)>,
    deadlocked: bool,
    scratch: Vec<Notice>,
}

impl Coordinator {
    /// One barrier round: fold in the window's notices, then decide
    /// whether to stop or how far the next window extends.
    fn step(&mut self, sh: &StintShared<'_>) {
        self.scratch.clear();
        let mut next: Option<SimTime> = None;
        for r in &sh.reports {
            let mut rep = r.lock().expect("report lock");
            self.scratch.append(&mut rep.notices);
            if let Some(t) = rep.next {
                next = Some(next.map_or(t, |m| m.min(t)));
            }
        }
        self.scratch.sort_by_key(|n| (n.at, n.key));
        for n in &self.scratch {
            let slot = chunk_slot_of(&sh.colls[n.coll as usize], n.chunk as usize);
            let complete = match n.kind {
                NoticeKind::Drain => {
                    self.counts[slot].0 += 1;
                    (self.counts[slot].0 == self.nodes).then_some(n.at)
                }
                NoticeKind::A2aFinal { candidate } => {
                    self.counts[slot].1 += 1;
                    (self.counts[slot].1 == self.flows_total[slot]).then_some(candidate)
                }
            };
            if let Some(at) = complete {
                self.completions.push((n.coll, n.chunk, at));
                self.chunks_left -= 1;
            }
        }
        let mut cmd = sh.cmd.lock().expect("cmd lock");
        if self.chunks_left == 0 || sh.poisoned.load(Ordering::SeqCst) {
            cmd.stop = true;
        } else if let Some(t) = next {
            cmd.window = SimTime::from_cycles(t.cycles().saturating_add(sh.lookahead));
        } else {
            // Every queue drained with chunks outstanding.
            self.deadlocked = true;
            cmd.stop = true;
        }
    }
}

/// Processes every event of `w`'s queue strictly before `window`.
fn process_window<E: CollectiveEngine>(
    sh: &StintShared<'_>,
    w: &mut Worker<'_, E>,
    window: SimTime,
) {
    let mut null_tracer = NullTracer;
    while w.queue.peek_time().is_some_and(|t| t < window) {
        let (now, _key, ev) = w.queue.pop_keyed().expect("peeked");
        let mut ctx = ExecCtx {
            nodes: sh.nodes,
            options: sh.options,
            colls: sh.colls,
            dim_nbrs: sh.dim_nbrs,
            a2a_routes: sh.a2a_routes,
            // Faulted fabrics never reach a parallel stint.
            fault: None,
            engines: &mut *w.engines,
            admit_wait: &mut *w.admit,
            base: w.base,
            rows: &mut w.rows,
            scratch: &mut w.scratch,
            sink: PartSink {
                queue: &mut w.queue,
                outbox: &mut w.outbox,
                node_part: sh.node_part,
                me: w.me,
            },
            net: &mut w.shard,
            notices: &mut w.notices,
            tracer: &mut null_tracer,
        };
        ctx.dispatch(now, ev);
    }
}

/// One worker's stint loop. Per window: process local events, deliver
/// outboxes, barrier, drain mailboxes, report, barrier, (worker 0 only)
/// coordinate, barrier, re-read the command. A panic inside the window
/// is caught so the other workers can reach the barriers; the payload is
/// rethrown by the stint driver after state is merged back.
fn stint_worker<'w, E: CollectiveEngine>(
    sh: &StintShared<'_>,
    mut w: Worker<'w, E>,
    mut coordinator: Option<&mut Coordinator>,
) -> (Worker<'w, E>, Option<Box<dyn Any + Send>>) {
    let parts = sh.mailboxes.len();
    let mut payload: Option<Box<dyn Any + Send>> = None;
    loop {
        let cmd = *sh.cmd.lock().expect("cmd lock");
        if cmd.stop {
            break;
        }
        if payload.is_none() && !sh.poisoned.load(Ordering::SeqCst) {
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| {
                process_window(sh, &mut w, cmd.window);
            })) {
                sh.poisoned.store(true, Ordering::SeqCst);
                payload = Some(p);
            }
        }
        for dst in 0..parts {
            if dst != w.me && !w.outbox[dst].is_empty() {
                sh.mailboxes[dst][w.me]
                    .lock()
                    .expect("mailbox lock")
                    .append(&mut w.outbox[dst]);
            }
        }
        sh.barrier.wait();
        for src in 0..parts {
            let mut mb = sh.mailboxes[w.me][src].lock().expect("mailbox lock");
            for (at, key, ev) in mb.drain(..) {
                w.queue.schedule_keyed(at, key, ev);
            }
        }
        {
            let mut rep = sh.reports[w.me].lock().expect("report lock");
            rep.next = w.queue.peek_time();
            rep.notices.append(&mut w.notices);
        }
        sh.barrier.wait();
        if let Some(c) = coordinator.as_deref_mut() {
            c.step(sh);
        }
        sh.barrier.wait();
    }
    (w, payload)
}

/// The executor: fabric + per-node engines + the event loop.
///
/// Generic over the engine type: monomorphizing over a concrete engine
/// (e.g. `AceEndpoint`) devirtualizes and inlines the per-event resource
/// charges, which matters at tens of millions of events per run. The
/// default `Box<dyn CollectiveEngine>` keeps runtime engine selection
/// (training loops mixing configurations) working unchanged.
///
/// Also generic over the [`Tracer`]: the default [`NullTracer`]
/// monomorphizes every trace hook to nothing (the perf gate verifies the
/// default build stays on the seed's hot path), while
/// [`ace_trace::RecordingTracer`] — attached via
/// [`with_tracer`](CollectiveExecutor::with_tracer) — captures link busy
/// spans, chunk/phase lifetimes and queue/pipe occupancy samples.
pub struct CollectiveExecutor<
    E: CollectiveEngine = Box<dyn CollectiveEngine>,
    T: Tracer = NullTracer,
> {
    spec: TopologySpec,
    nodes: usize,
    net: Network,
    engines: Vec<E>,
    options: ExecutorOptions,
    queue: EventQueue<Ev>,
    colls: Vec<Coll>,
    /// Collectives with chunks left to inject: LIFO drains the back,
    /// FIFO the front.
    pending_colls: VecDeque<usize>,
    inflight: usize,
    max_inflight: usize,
    /// Reusable per-chunk state slots; the in-flight cap bounds how many
    /// are live at once.
    arena: Vec<ChunkState>,
    free_slots: Vec<u32>,
    /// `admit_wait[node][phase]` — waiters ordered by global injection
    /// sequence. Admission follows this order strictly on every node, so
    /// all nodes keep *identical* resident chunk sets per partition —
    /// divergent orders (even/odd chunks ride opposite ring directions
    /// and skew arbitrarily) would let nodes hold disjoint sets that wait
    /// on each other's ring messages: a distributed deadlock.
    admit_wait: Vec<Vec<VecDeque<(u64, Waiter)>>>,
    /// Global injection sequence counter.
    next_seq: u64,
    /// Earliest pending `TryInject` timestamp; later duplicates are not
    /// scheduled (the earlier drain subsumes them).
    inject_at: Option<SimTime>,
    /// `dim_nbrs[(dim * 2 + dir) * nodes + node]` neighbor table, `dir`
    /// 0 = positive, 1 = negative — the flat form of
    /// [`Topology::neighbor`] the ring hot path reads.
    dim_nbrs: Vec<NodeId>,
    /// Route per all-to-all flow index (built on first all-to-all).
    a2a_routes: Vec<Route>,
    /// Scratch buffer for replaying buffered arrivals.
    replay_scratch: Vec<(u16, u16, SimTime)>,
    /// Notices emitted by the serial dispatch path, applied right after
    /// each event (reused buffer).
    notice_scratch: Vec<Notice>,
    /// Parallel-stint plan, present when `options.sim_threads > 1` and
    /// the topology supports domain partitioning.
    par: Option<ParPlan>,
    /// Degradation plan for a faulted fabric: ring sends consult its
    /// detour routes, all-to-all routes are re-planned around kills, and
    /// parallel stints are disabled (`par` stays `None`) so the serial
    /// loop owns every faulted event.
    fault: Option<FaultPlan>,
    now: SimTime,
    tracer: T,
}

impl<E: CollectiveEngine, T: Tracer> std::fmt::Debug for CollectiveExecutor<E, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollectiveExecutor")
            .field("topology", &self.spec)
            .field("collectives", &self.colls.len())
            .field("inflight", &self.inflight)
            .field("now", &self.now)
            .finish()
    }
}

impl CollectiveExecutor {
    /// Per-phase SRAM-partition weights for a plan (Section IV-I:
    /// bandwidth × chunk size). Used to size ACE endpoints.
    ///
    /// Engine-independent; lives in the default (boxed-engine) impl so
    /// callers can keep writing `CollectiveExecutor::phase_weights(..)`.
    pub fn phase_weights(plan: &CollectivePlan, net: &NetworkParams) -> Vec<f64> {
        let raw: Vec<f64> = plan
            .phases()
            .iter()
            .map(|p| {
                let bw = match p.link {
                    PhaseLink::Dim {
                        class: LinkClass::IntraPackage,
                        ..
                    } => net.intra.bandwidth_gbps * 2.0,
                    PhaseLink::Dim {
                        class: LinkClass::InterPackage,
                        ..
                    } => net.inter.bandwidth_gbps * 2.0,
                    PhaseLink::Global {
                        intra_ports,
                        inter_ports,
                    } => {
                        net.intra.bandwidth_gbps * f64::from(intra_ports)
                            + net.inter.bandwidth_gbps * f64::from(inter_ports)
                    }
                };
                bw * p.input_fraction
            })
            .collect();
        // Floor each phase at 15 % of the largest weight: latency-dominated
        // inter-package phases need enough resident chunks to cover the
        // 500-cycle link latency, which the raw bandwidth-proportional
        // heuristic under-provisions on large tori.
        let max = raw.iter().cloned().fold(f64::MIN, f64::max);
        raw.into_iter().map(|w| w.max(0.15 * max)).collect()
    }
}

impl<E: CollectiveEngine> CollectiveExecutor<E> {
    /// Builds an executor over `topology` with one engine per node
    /// produced by `make_engine`. Accepts anything convertible to a
    /// [`TopologySpec`] — in particular the legacy `TorusShape`.
    pub fn new(
        topology: impl Into<TopologySpec>,
        net_params: NetworkParams,
        make_engine: impl Fn() -> E,
    ) -> CollectiveExecutor<E> {
        Self::with_options(
            topology,
            net_params,
            ExecutorOptions::default(),
            make_engine,
        )
    }

    /// Builds an executor with non-default [`ExecutorOptions`] (ablation
    /// studies).
    pub fn with_options(
        topology: impl Into<TopologySpec>,
        net_params: NetworkParams,
        options: ExecutorOptions,
        make_engine: impl Fn() -> E,
    ) -> CollectiveExecutor<E> {
        CollectiveExecutor::with_tracer(topology, net_params, options, make_engine, NullTracer)
    }

    /// Builds an executor over a degraded fabric: killed links are
    /// removed from the network (ring sends take the plan's detour
    /// routes, all-to-all routes are re-planned around the kills) and
    /// degraded links run at their reduced bandwidth. A pristine plan
    /// builds the ordinary executor. Faulted fabrics always run on the
    /// serial loop — `sim_threads > 1` falls back rather than hanging on
    /// a partition the faults disconnected.
    pub fn with_fault_plan(
        topology: impl Into<TopologySpec>,
        net_params: NetworkParams,
        options: ExecutorOptions,
        faults: &FaultPlan,
        make_engine: impl Fn() -> E,
    ) -> CollectiveExecutor<E> {
        CollectiveExecutor::with_tracer_and_faults(
            topology,
            net_params,
            options,
            faults,
            make_engine,
            NullTracer,
        )
    }
}

impl<E: CollectiveEngine, T: Tracer> CollectiveExecutor<E, T> {
    /// Builds an executor with an attached [`Tracer`]. The default
    /// constructors route here with [`NullTracer`]; instrumented runs pass
    /// an [`ace_trace::RecordingTracer`] and read it back through
    /// [`tracer`](CollectiveExecutor::tracer) after the run.
    pub fn with_tracer(
        topology: impl Into<TopologySpec>,
        net_params: NetworkParams,
        options: ExecutorOptions,
        make_engine: impl Fn() -> E,
        tracer: T,
    ) -> CollectiveExecutor<E, T> {
        Self::build(
            topology.into(),
            net_params,
            options,
            None,
            make_engine,
            tracer,
        )
    }

    /// [`with_fault_plan`](CollectiveExecutor::with_fault_plan) with an
    /// attached tracer.
    pub fn with_tracer_and_faults(
        topology: impl Into<TopologySpec>,
        net_params: NetworkParams,
        options: ExecutorOptions,
        faults: &FaultPlan,
        make_engine: impl Fn() -> E,
        tracer: T,
    ) -> CollectiveExecutor<E, T> {
        let fault = (!faults.is_pristine()).then(|| faults.clone());
        Self::build(
            topology.into(),
            net_params,
            options,
            fault,
            make_engine,
            tracer,
        )
    }

    fn build(
        spec: TopologySpec,
        net_params: NetworkParams,
        options: ExecutorOptions,
        fault: Option<FaultPlan>,
        make_engine: impl Fn() -> E,
        tracer: T,
    ) -> CollectiveExecutor<E, T> {
        let mut net = Network::new(spec, net_params);
        if let Some(fp) = &fault {
            net.apply_fault_plan(fp);
        }
        let topo = net.topology();
        let nodes = topo.nodes();
        let engines = (0..nodes).map(|_| make_engine()).collect();
        let max_inflight = options.max_inflight_chunks.max(1);
        // Flatten the topology's neighbor function into the table the
        // ring hot path indexes: `(dim * 2 + dir) * nodes + node`.
        let mut dim_nbrs = Vec::with_capacity(topo.dims().len() * 2 * nodes);
        for (d, info) in topo.dims().iter().enumerate() {
            for plus in [true, false] {
                for node in 0..nodes {
                    dim_nbrs.push(if info.len > 1 {
                        topo.neighbor(NodeId(node), d, plus)
                    } else {
                        NodeId(node)
                    });
                }
            }
        }
        let mut tracer = tracer;
        if tracer.enabled() {
            // Label the trace tracks: pid 0 is the scheduler/sim lane,
            // pid 1 + n a per-node process whose tids are egress ports.
            tracer.meta_process(0, "sim");
            tracer.meta_thread(TRACK_SIM, "scheduler");
            for n in 0..nodes {
                tracer.meta_process(1 + n as u32, &format!("node {n}"));
            }
        }
        // A faulted fabric pins the run to the serial loop: domain
        // partitions assume the topology's pristine link structure, and
        // detour traffic crosses partitions the plan knows nothing about.
        let par = if fault.is_some() {
            None
        } else {
            partition_plan(&net, options.sim_threads)
        };
        CollectiveExecutor {
            spec,
            nodes,
            net,
            engines,
            options,
            queue: EventQueue::new(),
            colls: Vec::new(),
            pending_colls: VecDeque::new(),
            inflight: 0,
            max_inflight,
            arena: Vec::new(),
            free_slots: Vec::new(),
            admit_wait: vec![Vec::new(); nodes],
            next_seq: 0,
            inject_at: None,
            dim_nbrs,
            a2a_routes: Vec::new(),
            replay_scratch: Vec::new(),
            notice_scratch: Vec::new(),
            par,
            fault,
            now: SimTime::ZERO,
            tracer,
        }
    }

    /// The fault plan this executor was degraded with, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// The fabric's topology identity.
    pub fn spec(&self) -> TopologySpec {
        self.spec
    }

    /// Number of NPUs in the fabric.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The network (throughput/utilization meters).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Current simulation time (latest processed event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The attached tracer (read back recorded events after a run).
    pub fn tracer(&self) -> &T {
        &self.tracer
    }

    /// Mutable access to the attached tracer (record caller-side events —
    /// e.g. the training timeline's task spans — into the same arena).
    pub fn tracer_mut(&mut self) -> &mut T {
        &mut self.tracer
    }

    /// Consumes the executor and returns the tracer (export after a run).
    pub fn into_tracer(self) -> T {
        self.tracer
    }

    /// Integer busy-cycle totals per endpoint pipe, summed over every
    /// node's engine — the weights the bottleneck-attribution report
    /// apportions the communication share by.
    pub fn pipe_busy_totals(&self) -> PipeBusy {
        self.engines
            .iter()
            .fold(PipeBusy::default(), |acc, e| acc + e.pipe_busy())
    }

    /// Issues a collective of `op` with per-node `payload_bytes` at time
    /// `at`. Returns a handle for completion queries.
    pub fn issue(&mut self, op: CollectiveOp, payload_bytes: u64, at: SimTime) -> CollHandle {
        let plan = CollectivePlan::for_topology(op, self.net.topology());
        let kind = match op {
            CollectiveOp::AllToAll => CollKind::AllToAll,
            _ => CollKind::Ring,
        };
        let mut a2a_extra = 0;
        let chunk_sizes = match kind {
            CollKind::Ring => self.options.granularity.chunks(payload_bytes),
            CollKind::AllToAll => {
                // Chunk the per-destination slice; flows are (dst, chunk).
                // The division remainder is distributed one byte per
                // destination offset (see `a2a_flow_bytes`) so total
                // traffic is conserved instead of shrinking with the node
                // count.
                let n = self.nodes as u64;
                a2a_extra = payload_bytes % n.max(1);
                let mut sizes = self.options.granularity.chunks(payload_bytes / n.max(1));
                if sizes.is_empty() && a2a_extra > 0 {
                    // Payload smaller than the node count: the per-slice
                    // base is zero but the remainder bytes still travel.
                    sizes.push(0);
                }
                sizes
            }
        };
        let id = self.colls.len();
        let n_chunks = chunk_sizes.len();
        let (short_last, shard_cache, admit_cache) = byte_caches(&plan, &chunk_sizes);
        let phase_hot = phase_hot_table(&plan, kind, self.net.topology());
        self.colls.push(Coll {
            plan,
            kind,
            chunk_sizes,
            issued_at: at,
            next_chunk: 0,
            chunk_seq: vec![u64::MAX; n_chunks],
            chunk_slot: vec![NO_SLOT; n_chunks],
            done_chunks: 0,
            completed_at: if n_chunks == 0 { Some(at) } else { None },
            short_last,
            phase_hot,
            shard_cache,
            admit_cache,
            a2a_extra,
        });
        if kind == CollKind::AllToAll && n_chunks > 0 {
            // Byte conservation: per source, the n-1 flows carry
            // (n-1)·base + remainder bytes and the local (self) slice
            // keeps base, which must add up to the original payload.
            let n = self.nodes as u64;
            let base: u64 = self.colls[id].chunk_sizes.iter().sum();
            debug_assert_eq!(
                n * base + a2a_extra,
                payload_bytes,
                "all-to-all flows must conserve payload bytes"
            );
        }
        if n_chunks > 0 {
            self.pending_colls.push_back(id);
            let t = at.max(self.queue.now());
            // Coalesce: an already-pending TryInject at an earlier (or
            // equal) time drains this collective too.
            if self.inject_at.is_none_or(|s| t < s) {
                self.queue.schedule(t, Ev::TryInject);
                self.inject_at = Some(t);
            }
        }
        CollHandle(id)
    }

    /// Whether `coll` has completed.
    pub fn is_complete(&self, coll: CollHandle) -> bool {
        self.colls[coll.0].is_complete()
    }

    /// Completion time, if completed.
    pub fn completion_time(&self, coll: CollHandle) -> Option<SimTime> {
        self.colls[coll.0].completed_at
    }

    /// Processes events up to and including time `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            let (time, ev) = self.queue.pop().expect("peeked");
            self.now = time;
            self.trace_tick(time);
            self.handle(time, ev);
        }
        self.now = self.now.max(t);
    }

    /// Runs until `coll` completes; returns its completion time.
    ///
    /// With `sim_threads > 1` (and a partitionable topology) the run
    /// switches to parallel stints whenever only this collective is live
    /// and fully injected; results are byte-identical to the serial loop.
    ///
    /// # Panics
    ///
    /// Panics if the event queue drains without completing the collective
    /// (a deadlock — indicates an internal invariant violation).
    pub fn run_until_complete(&mut self, coll: CollHandle) -> SimTime {
        while !self.colls[coll.0].is_complete() {
            if self.parallel_ok(coll.0) {
                self.run_parallel_stint(coll.0);
                continue;
            }
            let (time, ev) = self
                .queue
                .pop()
                .unwrap_or_else(|| panic!("executor deadlock waiting on collective {}", coll.0));
            self.now = time;
            self.trace_tick(time);
            self.handle(time, ev);
        }
        self.colls[coll.0].completed_at.expect("completed")
    }

    /// Whether the next step of `run_until_complete(target)` can run as
    /// a parallel stint. Chunk injection is global, serial-only work
    /// (admission sequencing spans every node), so a stint requires
    /// every chunk of every collective to be injected already and every
    /// other collective to be complete: the only live events then belong
    /// to `target`, and the stint can run it to completion without the
    /// serial loop ever needing to interleave. Payloads larger than the
    /// in-flight cap therefore run serially until their final injection
    /// wave — a documented limitation. Tracing also pins the run to the
    /// serial loop (trace records are ordered by global pop order).
    fn parallel_ok(&self, target: usize) -> bool {
        self.par.is_some()
            && !self.tracer.enabled()
            && self.inject_at.is_none()
            && !self.queue.is_empty()
            && self.colls.iter().enumerate().all(|(i, c)| {
                c.next_chunk == c.chunk_sizes.len() && (i == target || c.is_complete())
            })
    }

    /// Runs one parallel stint: forks the executor's state into domain
    /// partitions, processes conservative-lookahead windows on worker
    /// threads until `target` completes, and merges everything back.
    ///
    /// Byte identity with the serial loop: within a partition, events
    /// pop in the same `(time, content key)` order the serial queue
    /// would give them (per-node and per-link state only ever depend on
    /// the owning partition's events); across partitions the only shared
    /// effects are completion notices, which the coordinator applies
    /// sorted by the emitting event's `(time, key)` — the serial pop
    /// order — and chunk completions, replayed in that order afterwards.
    fn run_parallel_stint(&mut self, target: usize) {
        let plan = self.par.take().expect("parallel_ok requires a plan");
        let parts = plan.bounds.len();
        let nodes = self.nodes;
        let chunks_left = self.colls[target].chunk_sizes.len() - self.colls[target].done_chunks;
        debug_assert!(chunks_left > 0, "stint started on a complete collective");
        let first = self.queue.peek_time().expect("parallel_ok requires events");
        let mut coord = Coordinator {
            nodes,
            counts: self
                .arena
                .iter()
                .map(|st| (st.nodes_done, st.flows_done))
                .collect(),
            flows_total: self.arena.iter().map(|st| st.flows_total).collect(),
            chunks_left,
            completions: Vec::new(),
            deadlocked: false,
            scratch: Vec::new(),
        };
        // Fork the global queue into per-partition queues routed by the
        // event's owning node, preserving each entry's key.
        let t0 = self.queue.now();
        let mut queues: Vec<EventQueue<Ev>> =
            (0..parts).map(|_| EventQueue::with_now(t0)).collect();
        for (at, key, ev) in self.queue.drain_entries() {
            let owner = ev_owner(&self.a2a_routes, &ev);
            queues[plan.node_part[owner] as usize].schedule_keyed(at, key, ev);
        }
        // Carve every arena slot's node rows into per-partition SlotRows
        // (split back-to-front so the split points stay valid).
        let mut rows: Vec<SlotRows> = plan
            .bounds
            .iter()
            .map(|&(lo, _)| SlotRows {
                base: lo,
                node_phase: Vec::with_capacity(self.arena.len()),
                arr_count: Vec::with_capacity(self.arena.len()),
                pending: Vec::with_capacity(self.arena.len()),
            })
            .collect();
        for st in &mut self.arena {
            debug_assert_eq!(st.node_phase.len(), nodes, "arena slot never reset");
            for p in (1..parts).rev() {
                let lo = plan.bounds[p].0;
                rows[p].node_phase.push(st.node_phase.split_off(lo));
                rows[p].arr_count.push(st.arr_count.split_off(lo));
                rows[p].pending.push(st.pending.split_off(lo));
            }
            rows[0].node_phase.push(std::mem::take(&mut st.node_phase));
            rows[0].arr_count.push(std::mem::take(&mut st.arr_count));
            rows[0].pending.push(std::mem::take(&mut st.pending));
        }
        let sh = StintShared {
            nodes,
            options: self.options,
            colls: &self.colls,
            dim_nbrs: &self.dim_nbrs,
            a2a_routes: &self.a2a_routes,
            node_part: &plan.node_part,
            lookahead: plan.lookahead,
            barrier: Barrier::new(parts),
            mailboxes: (0..parts)
                .map(|_| (0..parts).map(|_| Mutex::new(Vec::new())).collect())
                .collect(),
            reports: (0..parts).map(|_| Mutex::new(Report::default())).collect(),
            cmd: Mutex::new(Cmd {
                stop: false,
                window: SimTime::from_cycles(first.cycles().saturating_add(plan.lookahead)),
            }),
            poisoned: AtomicBool::new(false),
        };
        let mut engine_slices = split_by_bounds(&mut self.engines, &plan.bounds).into_iter();
        let mut admit_slices = split_by_bounds(&mut self.admit_wait, &plan.bounds).into_iter();
        let mut shards = self.net.shards(&plan.bounds).into_iter();
        let mut rows_iter = rows.into_iter();
        let mut workers = Vec::with_capacity(parts);
        for (me, queue) in queues.into_iter().enumerate() {
            workers.push(Worker {
                me,
                base: plan.bounds[me].0,
                queue,
                engines: engine_slices.next().expect("slice per partition"),
                admit: admit_slices.next().expect("slice per partition"),
                rows: rows_iter.next().expect("rows per partition"),
                shard: shards.next().expect("shard per partition"),
                outbox: (0..parts).map(|_| Vec::new()).collect(),
                scratch: Vec::new(),
                notices: Vec::new(),
            });
        }
        // Worker 0 (plus the coordinator) runs on this thread; the rest
        // get scoped threads. Results come back in partition order.
        let mut workers = workers.into_iter();
        let w0 = workers.next().expect("at least two partitions");
        type StintResult<'a, E> = (Worker<'a, E>, Option<Box<dyn Any + Send>>);
        let results: Vec<StintResult<'_, E>> = std::thread::scope(|s| {
            let handles: Vec<_> = workers
                .map(|w| {
                    let shr = &sh;
                    s.spawn(move || stint_worker(shr, w, None))
                })
                .collect();
            let r0 = stint_worker(&sh, w0, Some(&mut coord));
            std::iter::once(r0)
                .chain(handles.into_iter().map(|h| match h.join() {
                    Ok(r) => r,
                    Err(p) => resume_unwind(p),
                }))
                .collect()
        });
        // Merge everything back (also on the error paths, so a caught
        // panic propagates out of a structurally consistent executor).
        let mut payload: Option<Box<dyn Any + Send>> = None;
        let mut meters = Vec::with_capacity(parts);
        let mut end = t0;
        for (mut w, p) in results {
            if payload.is_none() {
                payload = p;
            }
            self.queue.absorb_counters(&w.queue);
            end = end.max(w.queue.now());
            let leftovers = w.queue.drain_entries();
            debug_assert!(
                leftovers.is_empty() || payload.is_some() || coord.deadlocked,
                "stint completed with live events"
            );
            for (at, key, ev) in leftovers {
                self.queue.schedule_keyed(at, key, ev);
            }
            for (slot, mut v) in w.rows.node_phase.into_iter().enumerate() {
                self.arena[slot].node_phase.append(&mut v);
            }
            for (slot, mut v) in w.rows.arr_count.into_iter().enumerate() {
                self.arena[slot].arr_count.append(&mut v);
            }
            for (slot, mut v) in w.rows.pending.into_iter().enumerate() {
                self.arena[slot].pending.append(&mut v);
            }
            meters.push(w.shard.into_meters());
        }
        for (meter, series) in &meters {
            self.net.merge_shard_meters(meter, series);
        }
        for (slot, &(nd, fd)) in coord.counts.iter().enumerate() {
            self.arena[slot].nodes_done = nd;
            self.arena[slot].flows_done = fd;
        }
        self.queue.advance_to(end);
        self.now = self.now.max(end);
        self.par = Some(plan);
        if let Some(p) = payload {
            resume_unwind(p);
        }
        if coord.deadlocked {
            panic!("executor deadlock waiting on collective {target}");
        }
        // Replay the completions in serial order: frees the slots, sets
        // `completed_at`, and keeps the (no-op here) injection drain on
        // its usual path.
        for (cid, chunk, at) in coord.completions {
            self.chunk_complete(at, cid as usize, chunk as usize);
        }
    }

    /// Drains every pending event; returns the final event time.
    pub fn run_to_idle(&mut self) -> SimTime {
        while let Some((time, ev)) = self.queue.pop() {
            self.now = time;
            self.trace_tick(time);
            self.handle(time, ev);
        }
        self.now
    }

    /// Samples queue depth and node-0 pipe occupancy every
    /// [`TRACE_SAMPLE_POPS`] event deliveries. With the [`NullTracer`]
    /// `enabled()` is a constant `false` and the whole body folds away.
    #[inline]
    fn trace_tick(&mut self, now: SimTime) {
        if self.tracer.enabled() && self.queue.pops().is_multiple_of(TRACE_SAMPLE_POPS) {
            self.tracer.instant(TRACK_SIM, "dispatch", now);
            self.tracer
                .counter(TRACK_SIM, "queue_depth", now, self.queue.len() as f64);
            let p = self.engines[0].pipe_busy();
            self.tracer
                .counter(TRACK_SIM, "pipe:hbm", now, p.hbm as f64);
            self.tracer
                .counter(TRACK_SIM, "pipe:dma", now, p.dma as f64);
            self.tracer
                .counter(TRACK_SIM, "pipe:bus", now, p.bus as f64);
            self.tracer
                .counter(TRACK_SIM, "pipe:proc", now, p.proc as f64);
        }
    }

    /// ACE utilization (node 0) over `[0, horizon]`, when the engine
    /// tracks it.
    pub fn ace_utilization(&self, horizon: SimTime) -> Option<f64> {
        self.engines[0].utilization(horizon)
    }

    /// Exact ACE busy cycles (node 0) over `[0, horizon]`, when the
    /// engine tracks them — the integer counter behind
    /// [`ace_utilization`](CollectiveExecutor::ace_utilization).
    pub fn ace_busy_cycles(&self, horizon: SimTime) -> Option<u64> {
        self.engines[0].busy_cycles(horizon)
    }

    /// Per-node HBM traffic generated by communication (node 0).
    pub fn comm_mem_traffic_bytes(&self) -> u64 {
        self.engines[0].mem_traffic_bytes()
    }

    /// Number of events that were scheduled in the past and clamped to
    /// the current time — always zero in a correct simulation. Reports
    /// surface this so release-mode sweeps can flag the invariant
    /// violation that `debug_assert` only catches in debug builds.
    pub fn past_schedules(&self) -> u64 {
        self.queue.past_schedules()
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    /// The handler context for the serial loop: global queue, whole
    /// network, whole arena.
    fn serial_ctx(
        &mut self,
    ) -> ExecCtx<'_, E, &mut EventQueue<Ev>, &mut Network, &mut [ChunkState], T> {
        ExecCtx {
            nodes: self.nodes,
            options: self.options,
            colls: &self.colls,
            dim_nbrs: &self.dim_nbrs,
            a2a_routes: &self.a2a_routes,
            fault: self.fault.as_ref(),
            engines: &mut self.engines,
            admit_wait: &mut self.admit_wait,
            base: 0,
            rows: self.arena.as_mut_slice(),
            scratch: &mut self.replay_scratch,
            sink: &mut self.queue,
            net: &mut self.net,
            notices: &mut self.notice_scratch,
            tracer: &mut self.tracer,
        }
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        if matches!(ev, Ev::TryInject) {
            self.inject_at = None;
            self.drain_lifo(now);
            return;
        }
        debug_assert!(self.notice_scratch.is_empty());
        let mut ctx = self.serial_ctx();
        ctx.dispatch(now, ev);
        // A dispatch emits at most one notice; apply it immediately so
        // the serial loop's completion bookkeeping happens at the same
        // point it always did.
        while let Some(n) = self.notice_scratch.pop() {
            self.apply_notice(n);
        }
    }

    /// Applies a completion notice to the chunk's cross-node counters,
    /// completing the chunk when the last node / flow reports in.
    fn apply_notice(&mut self, n: Notice) {
        let cid = n.coll as usize;
        let chunk = n.chunk as usize;
        let slot = chunk_slot_of(&self.colls[cid], chunk);
        match n.kind {
            NoticeKind::Drain => {
                let st = &mut self.arena[slot];
                st.nodes_done += 1;
                if st.nodes_done == self.nodes {
                    self.chunk_complete(n.at, cid, chunk);
                }
            }
            NoticeKind::A2aFinal { candidate } => {
                let st = &mut self.arena[slot];
                st.flows_done += 1;
                if st.flows_done == st.flows_total {
                    self.chunk_complete(candidate, cid, chunk);
                }
            }
        }
    }

    /// Injects chunks from the most recently issued pending collectives
    /// while in-flight capacity remains.
    fn drain_lifo(&mut self, now: SimTime) {
        while self.inflight < self.max_inflight {
            // Pick the next collective with chunks remaining per policy.
            let pick = match self.options.scheduling {
                SchedulingPolicy::Lifo => self.pending_colls.back().copied(),
                SchedulingPolicy::Fifo => self.pending_colls.front().copied(),
            };
            let Some(cid) = pick else { break };
            if self.colls[cid].next_chunk >= self.colls[cid].chunk_sizes.len() {
                match self.options.scheduling {
                    SchedulingPolicy::Lifo => {
                        self.pending_colls.pop_back();
                    }
                    SchedulingPolicy::Fifo => {
                        self.pending_colls.pop_front();
                    }
                }
                continue;
            }
            let chunk = self.colls[cid].next_chunk;
            self.colls[cid].next_chunk += 1;
            self.colls[cid].chunk_seq[chunk] = self.next_seq;
            self.next_seq += 1;
            self.inflight += 1;
            let start = now.max(self.colls[cid].issued_at);
            if self.tracer.enabled() {
                self.tracer
                    .begin(TRACK_SIM, "chunk", chunk_trace_id(cid, chunk), start);
            }
            match self.colls[cid].kind {
                CollKind::Ring => self.inject_ring_chunk(start, cid, chunk),
                CollKind::AllToAll => self.inject_a2a_chunk(start, cid, chunk),
            }
        }
    }

    // ------------------------------------------------------------------
    // Ring collectives
    // ------------------------------------------------------------------

    /// Assigns an arena slot to `(cid, chunk)`, recycling a free one.
    fn acquire_chunk_slot(&mut self, cid: usize, chunk: usize) {
        if self.colls[cid].chunk_slot[chunk] != NO_SLOT {
            return;
        }
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                self.arena.push(ChunkState::default());
                (self.arena.len() - 1) as u32
            }
        };
        self.arena[slot as usize].reset(self.nodes);
        self.colls[cid].chunk_slot[chunk] = slot;
    }

    /// The live chunk state of `(cid, chunk)`.
    fn chunk_state_mut(&mut self, cid: usize, chunk: usize) -> &mut ChunkState {
        let slot = self.colls[cid].chunk_slot[chunk];
        debug_assert_ne!(slot, NO_SLOT, "chunk state accessed outside its lifetime");
        &mut self.arena[slot as usize]
    }

    fn inject_ring_chunk(&mut self, now: SimTime, cid: usize, chunk: usize) {
        self.acquire_chunk_slot(cid, chunk);
        let nodes = self.nodes;
        let mut ctx = self.serial_ctx();
        for node in 0..nodes {
            ctx.request_phase(now, cid, chunk, node, 0, NOT_STARTED);
        }
        // Injection never reaches a completion handler, so no notices.
        debug_assert!(self.notice_scratch.is_empty());
    }

    fn chunk_complete(&mut self, now: SimTime, cid: usize, chunk: usize) {
        // Recycle the per-chunk state slot: large payloads create many
        // chunks and the arena keeps their vectors' capacity alive for
        // the next chunk instead of reallocating.
        let slot = std::mem::replace(&mut self.colls[cid].chunk_slot[chunk], NO_SLOT);
        debug_assert_ne!(slot, NO_SLOT, "chunk completed twice");
        if self.tracer.enabled() {
            self.tracer
                .end(TRACK_SIM, "chunk", chunk_trace_id(cid, chunk), now);
        }
        self.free_slots.push(slot);
        self.colls[cid].done_chunks += 1;
        self.inflight -= 1;
        if self.colls[cid].done_chunks == self.colls[cid].chunk_sizes.len() {
            self.colls[cid].completed_at = Some(now);
        }
        self.drain_lifo(now);
    }

    // ------------------------------------------------------------------
    // Direct all-to-all
    // ------------------------------------------------------------------

    /// Flow index encoding: `flow = src * (nodes - 1) + dst_offset` where
    /// the destination is `(src + 1 + dst_offset) % nodes`.
    fn a2a_flow_endpoints(&self, flow: usize) -> (usize, usize) {
        let n = self.nodes;
        let src = flow / (n - 1);
        let off = flow % (n - 1);
        let dst = (src + 1 + off) % n;
        (src, dst)
    }

    /// Bytes flow `flow` carries for `chunk` — see [`a2a_flow_bytes_of`].
    fn a2a_flow_bytes(&self, cid: usize, chunk: usize, flow: usize) -> u64 {
        a2a_flow_bytes_of(&self.colls[cid], self.nodes, chunk, flow)
    }

    /// Builds the per-flow XYZ route table on first use.
    fn ensure_a2a_routes(&mut self) {
        if !self.a2a_routes.is_empty() {
            return;
        }
        let n = self.nodes;
        let routes: Vec<Route> = (0..n * (n - 1))
            .map(|flow| {
                let (src, dst) = self.a2a_flow_endpoints(flow);
                match &self.fault {
                    // Killed links force the flow onto a BFS route around
                    // them; resolve() proved the fabric stays connected,
                    // so the detour always exists.
                    Some(fp) if fp.has_kills() => fp
                        .route_around(self.net.topology(), NodeId(src), NodeId(dst))
                        .expect("fault plan resolved on a connected fabric"),
                    _ => self.net.topology().route(NodeId(src), NodeId(dst)),
                }
            })
            .collect();
        self.a2a_routes = routes;
    }

    fn inject_a2a_chunk(&mut self, now: SimTime, cid: usize, chunk: usize) {
        self.acquire_chunk_slot(cid, chunk);
        self.ensure_a2a_routes();
        let n = self.nodes;
        let flows = n * (n - 1);
        self.chunk_state_mut(cid, chunk).flows_total = flows;
        for flow in 0..flows {
            let src = flow / (n - 1);
            let bytes = self.a2a_flow_bytes(cid, chunk, flow);
            // Stage the source's slice buffer once per chunk. All-to-all
            // is single-phase: it shares phase 0's partition and FSMs
            // (Section V).
            let staged = if flow % (n - 1) == 0 {
                self.engines[src].chunk_inject(now, bytes)
            } else {
                now
            };
            let ready = self.engines[src].fetch_and_send(now, bytes, 0).max(staged);
            let ev = Ev::A2aSend {
                coll: cid as u32,
                chunk: chunk as u32,
                flow: flow as u32,
                hop: 0,
            };
            self.queue
                .schedule_keyed(ready.max(now), content_key(&ev), ev);
        }
    }
}

/// Async-event id for a chunk's lifetime span.
fn chunk_trace_id(cid: usize, chunk: usize) -> u64 {
    ((cid as u64) << 32) | chunk as u64
}

/// Async-event id for one (collective, chunk, phase) lifetime span.
fn phase_trace_id(cid: usize, chunk: usize, phase: u16) -> u64 {
    ((cid as u64) << 40) | ((chunk as u64) << 16) | u64::from(phase)
}

/// Precomputes the per-phase event-handler constants for ring plans (an
/// all-to-all plan gets an empty table — its single phase never reaches
/// the ring handlers).
fn phase_hot_table(plan: &CollectivePlan, kind: CollKind, topo: &dyn Topology) -> Vec<PhaseHot> {
    if kind != CollKind::Ring {
        return Vec::new();
    }
    plan.phases()
        .iter()
        .map(|spec| {
            let k = spec.ring_size as u16;
            let dim = spec.dim_index().expect("ring phases have a dimension");
            let info = topo.dims()[dim];
            PhaseHot {
                kind: spec.kind,
                ring_k: k,
                final_step: match spec.kind {
                    PhaseKind::ReduceScatter | PhaseKind::AllGather => k - 2,
                    PhaseKind::RingAllReduce => 2 * k - 3,
                    PhaseKind::DirectAllToAll => {
                        unreachable!("all-to-all is not a ring phase")
                    }
                },
                dim: dim as u16,
                port_idx_plus: info.port_plus.index() as u8,
                port_idx_minus: info.port_minus.index() as u8,
            }
        })
        .collect()
}

/// Precomputes the per-phase shard and admission byte tables for a plan
/// over `chunk_sizes` (column 0: leading full chunks; column 1: the short
/// trailing chunk, when present).
fn byte_caches(plan: &CollectivePlan, chunk_sizes: &[u64]) -> (bool, Vec<u64>, Vec<u64>) {
    let phases = plan.phases();
    let first = chunk_sizes.first().copied().unwrap_or(0);
    let last = chunk_sizes.last().copied().unwrap_or(0);
    let short_last = chunk_sizes.len() > 1 && last != first;
    let sizes = [first, last];
    let mut shard_cache = vec![0u64; phases.len() * 2];
    let mut admit_cache = vec![0u64; (phases.len() + 1) * 2];
    for (p, spec) in phases.iter().enumerate() {
        for (col, &size) in sizes.iter().enumerate() {
            shard_cache[p * 2 + col] = shard_of(spec, size);
            admit_cache[p * 2 + col] = ((size as f64) * spec.input_fraction).ceil() as u64;
        }
    }
    if let Some(spec) = phases.last() {
        // Terminal partition: the final result (full chunk for all-reduce).
        let out = spec.output_fraction();
        for (col, &size) in sizes.iter().enumerate() {
            admit_cache[phases.len() * 2 + col] = ((size as f64) * out).ceil() as u64;
        }
    }
    (short_last, shard_cache, admit_cache)
}

/// Per-node shard size moved in one ring step of a phase, for a chunk of
/// `size` bytes.
fn shard_of(spec: &PhaseSpec, size: u64) -> u64 {
    let input = size as f64 * spec.input_fraction;
    let k = spec.ring_size as f64;
    let shard = match spec.kind {
        // All-gather forwards the whole phase input each step.
        PhaseKind::AllGather => input,
        _ => input / k,
    };
    (shard.ceil() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use ace_net::TorusShape;

    fn executor(config: SystemConfig, shape: TorusShape) -> CollectiveExecutor {
        let params = NetworkParams::paper_default();
        let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, shape);
        let weights = CollectiveExecutor::phase_weights(&plan, &params);
        CollectiveExecutor::new(shape, params, move || config.make_engine(&weights))
    }

    fn shape442() -> TorusShape {
        TorusShape::new(4, 2, 2).unwrap()
    }

    #[test]
    fn all_reduce_completes_on_all_configs() {
        for config in SystemConfig::ALL {
            let mut ex = executor(config, shape442());
            let h = ex.issue(CollectiveOp::AllReduce, 1 << 20, SimTime::ZERO);
            let t = ex.run_until_complete(h);
            assert!(t.cycles() > 0, "{config}: zero completion time");
            assert!(ex.is_complete(h));
        }
    }

    #[test]
    fn ideal_is_fastest_baseline_comm_opt_beats_comp_opt() {
        let run = |config| {
            let mut ex = executor(config, shape442());
            let h = ex.issue(CollectiveOp::AllReduce, 16 << 20, SimTime::ZERO);
            ex.run_until_complete(h).cycles()
        };
        let ideal = run(SystemConfig::Ideal);
        let ace = run(SystemConfig::Ace);
        let comm = run(SystemConfig::BaselineCommOpt);
        let comp = run(SystemConfig::BaselineCompOpt);
        assert!(ideal <= ace, "ideal {ideal} vs ace {ace}");
        assert!(ace < comp, "ace {ace} vs comp-opt {comp}");
        assert!(comm < comp, "comm-opt {comm} vs comp-opt {comp}");
    }

    #[test]
    fn ace_is_close_to_ideal() {
        // Fig. 5: ACE with 128 GB/s reaches ≈90 % of ideal performance.
        let run = |config| {
            let mut ex = executor(config, shape442());
            let h = ex.issue(CollectiveOp::AllReduce, 16 << 20, SimTime::ZERO);
            ex.run_until_complete(h).cycles() as f64
        };
        let ideal = run(SystemConfig::Ideal);
        let ace = run(SystemConfig::Ace);
        assert!(ace / ideal < 1.6, "ACE at {:.2}x ideal", ace / ideal);
    }

    #[test]
    fn larger_payload_takes_longer() {
        let mut ex = executor(SystemConfig::Ace, shape442());
        let small = ex.issue(CollectiveOp::AllReduce, 1 << 20, SimTime::ZERO);
        let ts = ex.run_until_complete(small);
        let mut ex2 = executor(SystemConfig::Ace, shape442());
        let large = ex2.issue(CollectiveOp::AllReduce, 8 << 20, SimTime::ZERO);
        let tl = ex2.run_until_complete(large);
        assert!(tl > ts);
    }

    #[test]
    fn all_to_all_completes() {
        for config in [
            SystemConfig::BaselineCommOpt,
            SystemConfig::Ace,
            SystemConfig::Ideal,
        ] {
            let mut ex = executor(config, shape442());
            let h = ex.issue(CollectiveOp::AllToAll, 1 << 20, SimTime::ZERO);
            let t = ex.run_until_complete(h);
            assert!(t.cycles() > 0, "{config}");
        }
    }

    #[test]
    fn lifo_priority_favors_later_issue() {
        // Issue a huge collective, then a tiny one: LIFO lets the tiny
        // late-comer finish long before the big early one.
        let mut ex = executor(SystemConfig::Ace, shape442());
        let big = ex.issue(CollectiveOp::AllReduce, 64 << 20, SimTime::ZERO);
        let small = ex.issue(CollectiveOp::AllReduce, 256 << 10, SimTime::from_cycles(1));
        let t_small = ex.run_until_complete(small);
        let t_big = ex.run_until_complete(big);
        assert!(t_small < t_big);
    }

    #[test]
    fn zero_payload_all_to_all_completes_immediately() {
        let mut ex = executor(SystemConfig::Ace, shape442());
        let h = ex.issue(CollectiveOp::AllToAll, 0, SimTime::from_cycles(3));
        assert!(ex.is_complete(h));
    }

    #[test]
    fn issue_at_future_time_defers_start() {
        let mut ex = executor(SystemConfig::Ideal, shape442());
        let h = ex.issue(
            CollectiveOp::AllReduce,
            1 << 20,
            SimTime::from_cycles(10_000),
        );
        let done = ex.run_until_complete(h);
        assert!(
            done.cycles() > 10_000,
            "work cannot finish before it starts"
        );
    }

    #[test]
    fn zero_payload_completes_immediately() {
        let mut ex = executor(SystemConfig::Ace, shape442());
        let h = ex.issue(CollectiveOp::AllReduce, 0, SimTime::from_cycles(5));
        assert!(ex.is_complete(h));
        assert_eq!(ex.completion_time(h), Some(SimTime::from_cycles(5)));
    }

    #[test]
    fn network_records_traffic() {
        let mut ex = executor(SystemConfig::Ideal, shape442());
        let h = ex.issue(CollectiveOp::AllReduce, 4 << 20, SimTime::ZERO);
        ex.run_until_complete(h);
        assert!(ex.network().total_bytes() > 0);
        assert!(ex.network().achieved_gbps_per_npu() > 0.0);
    }

    #[test]
    fn run_until_respects_time_bound() {
        let mut ex = executor(SystemConfig::Ace, shape442());
        let h = ex.issue(CollectiveOp::AllReduce, 16 << 20, SimTime::ZERO);
        ex.run_until(SimTime::from_cycles(10));
        assert!(!ex.is_complete(h));
        assert!(ex.now() >= SimTime::from_cycles(10));
    }

    #[test]
    fn mem_traffic_baseline_exceeds_ace() {
        let mut base = executor(SystemConfig::BaselineCommOpt, shape442());
        let h = base.issue(CollectiveOp::AllReduce, 4 << 20, SimTime::ZERO);
        base.run_until_complete(h);
        let mut ace = executor(SystemConfig::Ace, shape442());
        let h = ace.issue(CollectiveOp::AllReduce, 4 << 20, SimTime::ZERO);
        ace.run_until_complete(h);
        let b = base.comm_mem_traffic_bytes();
        let a = ace.comm_mem_traffic_bytes();
        assert!(b > 2 * a, "baseline {b} vs ACE {a}");
    }

    #[test]
    fn standalone_reduce_scatter_and_all_gather_complete() {
        for op in [CollectiveOp::ReduceScatter, CollectiveOp::AllGather] {
            for config in [
                SystemConfig::BaselineCommOpt,
                SystemConfig::Ace,
                SystemConfig::Ideal,
            ] {
                let mut ex = executor(config, shape442());
                let h = ex.issue(op, 4 << 20, SimTime::ZERO);
                let t = ex.run_until_complete(h);
                assert!(t.cycles() > 0, "{op:?} on {config}");
            }
        }
    }

    #[test]
    fn reduce_scatter_is_cheaper_than_all_reduce() {
        // RS moves roughly half the bytes of AR (no all-gather half).
        let mut rs = executor(SystemConfig::Ideal, shape442());
        let h = rs.issue(CollectiveOp::ReduceScatter, 16 << 20, SimTime::ZERO);
        let t_rs = rs.run_until_complete(h);
        let mut ar = executor(SystemConfig::Ideal, shape442());
        let h = ar.issue(CollectiveOp::AllReduce, 16 << 20, SimTime::ZERO);
        let t_ar = ar.run_until_complete(h);
        assert!(t_rs < t_ar, "RS {t_rs} vs AR {t_ar}");
    }

    #[test]
    fn fifo_scheduling_starves_late_collectives() {
        let opts = ExecutorOptions {
            scheduling: SchedulingPolicy::Fifo,
            ..Default::default()
        };
        let params = NetworkParams::paper_default();
        let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, shape442());
        let weights = CollectiveExecutor::phase_weights(&plan, &params);
        let mut ex = CollectiveExecutor::with_options(shape442(), params, opts, move || {
            SystemConfig::Ace.make_engine(&weights)
        });
        let big = ex.issue(CollectiveOp::AllReduce, 32 << 20, SimTime::ZERO);
        let small = ex.issue(CollectiveOp::AllReduce, 256 << 10, SimTime::from_cycles(1));
        let t_small = ex.run_until_complete(small);
        let t_big = ex.run_until_complete(big);
        // Under FIFO the small late-comer drains after (or with) the big one.
        assert!(
            t_small.cycles() + 1 >= t_big.cycles(),
            "small {t_small} big {t_big}"
        );
    }

    #[test]
    fn unidirectional_rings_are_slower() {
        let run = |bidir: bool| {
            let opts = ExecutorOptions {
                bidirectional_rings: bidir,
                ..Default::default()
            };
            let params = NetworkParams::paper_default();
            let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, shape442());
            let weights = CollectiveExecutor::phase_weights(&plan, &params);
            let mut ex = CollectiveExecutor::with_options(shape442(), params, opts, move || {
                SystemConfig::Ideal.make_engine(&weights)
            });
            let h = ex.issue(CollectiveOp::AllReduce, 16 << 20, SimTime::ZERO);
            ex.run_until_complete(h).cycles()
        };
        let bi = run(true);
        let uni = run(false);
        assert!(uni as f64 > bi as f64 * 1.5, "uni {uni} vs bi {bi}");
    }

    #[test]
    fn tiny_inflight_cap_throttles() {
        let run = |cap: usize| {
            let opts = ExecutorOptions {
                max_inflight_chunks: cap,
                ..Default::default()
            };
            let params = NetworkParams::paper_default();
            let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, shape442());
            let weights = CollectiveExecutor::phase_weights(&plan, &params);
            let mut ex = CollectiveExecutor::with_options(shape442(), params, opts, move || {
                SystemConfig::Ace.make_engine(&weights)
            });
            let h = ex.issue(CollectiveOp::AllReduce, 8 << 20, SimTime::ZERO);
            ex.run_until_complete(h).cycles()
        };
        assert!(run(2) > run(64));
    }

    #[test]
    fn ace_utilization_reported_only_for_ace() {
        let mut ace = executor(SystemConfig::Ace, shape442());
        let h = ace.issue(CollectiveOp::AllReduce, 4 << 20, SimTime::ZERO);
        let t = ace.run_until_complete(h);
        assert!(ace.ace_utilization(t).unwrap() > 0.0);
        let base = executor(SystemConfig::BaselineCommOpt, shape442());
        assert!(base.ace_utilization(SimTime::from_cycles(1)).is_none());
    }

    #[test]
    fn ace_busy_cycles_back_the_utilization_ratio() {
        let mut ace = executor(SystemConfig::Ace, shape442());
        let h = ace.issue(CollectiveOp::AllReduce, 4 << 20, SimTime::ZERO);
        let t = ace.run_until_complete(h);
        let busy = ace.ace_busy_cycles(t).expect("ACE tracks busy cycles");
        assert!(busy > 0 && busy <= t.cycles());
        let util = ace.ace_utilization(t).unwrap();
        assert_eq!(util, busy as f64 / t.cycles() as f64);
        let base = executor(SystemConfig::BaselineCommOpt, shape442());
        assert!(base.ace_busy_cycles(SimTime::from_cycles(1)).is_none());
    }

    #[test]
    fn recorded_link_spans_reconcile_with_the_network_meter() {
        let params = NetworkParams::paper_default();
        let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, shape442());
        let weights = CollectiveExecutor::phase_weights(&plan, &params);
        let mut ex = CollectiveExecutor::with_tracer(
            shape442(),
            params,
            ExecutorOptions::default(),
            move || SystemConfig::Ace.make_engine(&weights),
            ace_trace::RecordingTracer::new(),
        );
        let h = ex.issue(CollectiveOp::AllReduce, 4 << 20, SimTime::ZERO);
        ex.run_until_complete(h);
        let tr = ex.tracer();
        assert_eq!(tr.dropped(), 0, "trace overflowed its arena");
        let recorded = tr.span_cycles_with_prefix("link:");
        assert_eq!(
            recorded as f64,
            ex.network().util_busy_total_cycles(),
            "link spans must reconcile with the fabric meter"
        );
        assert!(tr.count_with_prefix("chunk") > 0, "chunk spans recorded");
        assert!(tr.count_with_prefix("phase") > 0, "phase spans recorded");
    }

    #[test]
    fn pipe_busy_totals_sum_engine_counters() {
        let mut ex = executor(SystemConfig::Ace, shape442());
        assert_eq!(ex.pipe_busy_totals(), ace_trace::PipeBusy::default());
        let h = ex.issue(CollectiveOp::AllReduce, 4 << 20, SimTime::ZERO);
        ex.run_until_complete(h);
        let p = ex.pipe_busy_totals();
        assert!(p.hbm > 0 && p.dma > 0 && p.bus > 0 && p.proc > 0);
    }

    #[test]
    fn no_past_schedules_in_a_clean_run() {
        let mut ex = executor(SystemConfig::Ace, shape442());
        let h = ex.issue(CollectiveOp::AllReduce, 8 << 20, SimTime::ZERO);
        ex.run_until_complete(h);
        assert_eq!(ex.past_schedules(), 0);
    }

    /// Total bytes one source's flows carry for a payload, plus its local
    /// slice — must reproduce the payload exactly.
    fn a2a_src_bytes(ex: &CollectiveExecutor, cid: usize, payload: u64) -> u64 {
        let n = ex.nodes;
        let n_chunks = ex.colls[cid].chunk_sizes.len();
        let mut sent = 0;
        for flow in 0..(n - 1) {
            for chunk in 0..n_chunks {
                sent += ex.a2a_flow_bytes(cid, chunk, flow);
            }
        }
        sent + payload / n as u64
    }

    #[test]
    fn a2a_flow_bytes_conserve_payload() {
        // The old per-destination `payload / n` chunking silently dropped
        // up to n-1 remainder bytes per collective.
        for (l, v, hh) in [(2, 1, 1), (4, 2, 2), (4, 4, 4)] {
            let shape = TorusShape::new(l, v, hh).unwrap();
            for payload in [1u64, 7, 1000, 64 * 1024 + 13, (1 << 20) + 1] {
                let mut ex = executor(SystemConfig::Ideal, shape);
                let h = ex.issue(CollectiveOp::AllToAll, payload, SimTime::ZERO);
                let total = a2a_src_bytes(&ex, h.0, payload);
                assert_eq!(
                    total, payload,
                    "payload {payload} on {l}x{v}x{hh}: flows carry {total}"
                );
            }
        }
    }

    #[test]
    fn a2a_sub_node_count_payload_still_travels() {
        // payload < nodes: the per-slice base is zero, but the remainder
        // bytes must still move (previously the collective completed
        // instantly, dropping them).
        let mut ex = executor(SystemConfig::Ideal, shape442());
        let h = ex.issue(CollectiveOp::AllToAll, 7, SimTime::ZERO);
        assert!(!ex.is_complete(h));
        let t = ex.run_until_complete(h);
        assert!(t.cycles() > 0);
        assert!(ex.network().total_bytes() >= 7);
    }

    #[test]
    fn a2a_network_traffic_grows_with_payload_not_truncates() {
        // With conservation, an odd payload must carry at least as many
        // bytes as the truncated even payload below it.
        let run = |payload| {
            let mut ex = executor(SystemConfig::Ideal, shape442());
            let h = ex.issue(CollectiveOp::AllToAll, payload, SimTime::ZERO);
            ex.run_until_complete(h);
            ex.network().total_bytes()
        };
        let n = shape442().nodes() as u64;
        let base = run(1 << 20);
        let odd = run((1 << 20) + (n - 1));
        assert!(odd > base, "remainder bytes must reach the network");
    }

    /// Runs one collective to completion with `sim_threads = threads` and
    /// returns an exact fingerprint of the simulation's observable state:
    /// completion cycles, network bytes, link-busy integral (bit-exact),
    /// endpoint memory traffic, and ACE engine-busy cycles. The parallel
    /// engine is byte-identical to the serial one, so every component must
    /// match the `threads = 1` run exactly.
    fn par_fingerprint(
        spec: TopologySpec,
        op: CollectiveOp,
        payload: u64,
        threads: usize,
    ) -> (u64, u64, u64, u64, u64) {
        let params = NetworkParams::paper_default();
        let plan = CollectivePlan::for_spec(op, spec);
        let weights = CollectiveExecutor::phase_weights(&plan, &params);
        let options = ExecutorOptions {
            sim_threads: threads,
            ..Default::default()
        };
        let config = SystemConfig::Ace;
        let mut ex = CollectiveExecutor::with_options(spec, params, options, move || {
            config.make_engine(&weights)
        });
        if threads > 1 {
            assert!(
                ex.par.is_some(),
                "{spec:?} x{threads}: expected a partition plan"
            );
        }
        let h = ex.issue(op, payload, SimTime::ZERO);
        let t = ex.run_until_complete(h);
        assert!(ex.is_complete(h));
        assert_eq!(ex.past_schedules(), 0, "{spec:?} x{threads}: causality");
        (
            t.cycles(),
            ex.network().total_bytes(),
            ex.network().util_busy_total_cycles().to_bits(),
            ex.comm_mem_traffic_bytes(),
            ex.ace_busy_cycles(t).unwrap_or(0),
        )
    }

    #[test]
    fn parallel_all_reduce_matches_serial_on_torus() {
        let spec: TopologySpec = shape442().into();
        let serial = par_fingerprint(spec, CollectiveOp::AllReduce, 3 << 20, 1);
        for threads in [2, 4] {
            let par = par_fingerprint(spec, CollectiveOp::AllReduce, 3 << 20, threads);
            assert_eq!(par, serial, "all-reduce diverged at {threads} threads");
        }
    }

    #[test]
    fn parallel_all_to_all_matches_serial_on_torus() {
        let spec: TopologySpec = shape442().into();
        let serial = par_fingerprint(spec, CollectiveOp::AllToAll, 3 << 20, 1);
        for threads in [2, 4] {
            let par = par_fingerprint(spec, CollectiveOp::AllToAll, 3 << 20, threads);
            assert_eq!(par, serial, "all-to-all diverged at {threads} threads");
        }
    }

    #[test]
    fn parallel_matches_serial_on_switch_and_hierarchical() {
        let specs = [
            TopologySpec::Switch {
                nodes: 8,
                gbps: None,
            },
            TopologySpec::Hierarchical {
                scale_up: 4,
                scale_out: 3,
            },
        ];
        for spec in specs {
            for op in [CollectiveOp::AllReduce, CollectiveOp::AllToAll] {
                let serial = par_fingerprint(spec, op, 2 << 20, 1);
                for threads in [2, 4] {
                    let par = par_fingerprint(spec, op, 2 << 20, threads);
                    assert_eq!(par, serial, "{spec:?} {op:?} diverged at {threads} threads");
                }
            }
        }
    }

    #[test]
    fn parallel_matches_serial_with_remainder_payload() {
        // Odd payloads exercise the uneven chunk/shard splits; partition
        // boundaries must not round remainder bytes differently.
        let spec: TopologySpec = shape442().into();
        let payload = (1 << 20) + 13;
        let serial = par_fingerprint(spec, CollectiveOp::AllReduce, payload, 1);
        assert_eq!(
            par_fingerprint(spec, CollectiveOp::AllReduce, payload, 4),
            serial
        );
    }

    #[test]
    fn oversubscribed_threads_match_serial() {
        // More threads than nodes: partitions degenerate to one node each
        // and every link crosses a boundary (narrowest possible windows).
        let spec: TopologySpec = shape442().into();
        let serial = par_fingerprint(spec, CollectiveOp::AllReduce, 1 << 20, 1);
        assert_eq!(
            par_fingerprint(spec, CollectiveOp::AllReduce, 1 << 20, 16),
            serial
        );
    }

    #[test]
    fn partition_boundaries_conserve_bytes() {
        // Property: for every shape x thread count, the parallel engine
        // moves exactly the bytes the serial engine does — nothing lost or
        // duplicated at partition boundaries, aligned or not.
        for (x, y, z) in [(2usize, 2usize, 2usize), (4, 2, 2), (3, 3, 1), (5, 2, 1)] {
            let spec: TopologySpec = TorusShape::new(x, y, z).unwrap().into();
            let serial = par_fingerprint(spec, CollectiveOp::AllReduce, 1 << 20, 1);
            for threads in [2, 3, 4] {
                let par = par_fingerprint(spec, CollectiveOp::AllReduce, 1 << 20, threads);
                assert_eq!(
                    par.1, serial.1,
                    "{x}x{y}x{z} x{threads}: bytes not conserved"
                );
                assert_eq!(par, serial, "{x}x{y}x{z} x{threads}: fingerprint diverged");
            }
        }
    }

    #[test]
    fn parallel_back_to_back_collectives_match_serial() {
        let run = |threads: usize| {
            let params = NetworkParams::paper_default();
            let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, shape442());
            let weights = CollectiveExecutor::phase_weights(&plan, &params);
            let options = ExecutorOptions {
                sim_threads: threads,
                ..Default::default()
            };
            let mut ex = CollectiveExecutor::with_options(shape442(), params, options, move || {
                SystemConfig::Ace.make_engine(&weights)
            });
            let h1 = ex.issue(CollectiveOp::AllReduce, 2 << 20, SimTime::ZERO);
            let t1 = ex.run_until_complete(h1);
            let h2 = ex.issue(CollectiveOp::AllToAll, 2 << 20, t1);
            let t2 = ex.run_until_complete(h2);
            (t1.cycles(), t2.cycles(), ex.network().total_bytes())
        };
        assert_eq!(run(4), run(1));
    }

    #[test]
    fn concurrent_collectives_match_serial() {
        // Two live collectives force the conservative serial fallback in
        // the parallel engine; results still match exactly.
        let run = |threads: usize| {
            let params = NetworkParams::paper_default();
            let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, shape442());
            let weights = CollectiveExecutor::phase_weights(&plan, &params);
            let options = ExecutorOptions {
                sim_threads: threads,
                ..Default::default()
            };
            let mut ex = CollectiveExecutor::with_options(shape442(), params, options, move || {
                SystemConfig::Ace.make_engine(&weights)
            });
            let h1 = ex.issue(CollectiveOp::AllReduce, 1 << 20, SimTime::ZERO);
            let h2 = ex.issue(CollectiveOp::AllToAll, 1 << 20, SimTime::ZERO);
            let t1 = ex.run_until_complete(h1);
            let t2 = ex.run_until_complete(h2);
            (t1.cycles(), t2.cycles(), ex.network().total_bytes())
        };
        assert_eq!(run(4), run(1));
    }
}
