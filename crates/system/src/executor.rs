//! Event-driven, message-granularity collective execution across all
//! nodes of the fabric.
//!
//! Each collective payload is split into chunks (Table III) that pipeline
//! independently through the plan's phases (Section IV-E). Ring phases run
//! the classic rotate-reduce chains: every node sends step 0 at phase
//! start, and each arrival triggers the next step's send after the
//! endpoint engine charges its resource costs. Direct all-to-all sends one
//! flow per (source, destination) pair over XYZ routes with per-hop
//! endpoint forwarding. Bidirectional rings are used by alternating chunk
//! parity between the + and − ring directions.
//!
//! Chunk admission into ACE's SRAM partitions applies backpressure;
//! baseline and ideal endpoints admit unconditionally. A global in-flight
//! chunk cap bounds pipelining depth, and pending collectives are drained
//! in LIFO issue order (Section V: "LIFO collective scheduling policy to
//! give more priority to the collectives of first layers during
//! back-propagation").

use std::collections::BTreeMap;

use ace_collectives::{CollectiveOp, CollectivePlan, Granularity, PhaseKind};
use ace_endpoint::CollectiveEngine;
use ace_net::{Dim, Network, NetworkParams, NodeId, Port, TorusShape};
use ace_simcore::{EventQueue, SimTime};

/// Identifies an issued collective within its executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CollHandle(pub(crate) usize);

/// How pending collectives are drained when injecting chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// Most recently issued first (Section V: prioritizes the first
    /// layers' collectives during back-propagation). The paper's default.
    Lifo,
    /// Oldest first — the ablation comparator.
    Fifo,
}

/// Tunable executor knobs for ablation studies. The defaults reproduce
/// the paper's configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecutorOptions {
    /// Payload → chunk → message decomposition (Table III).
    pub granularity: Granularity,
    /// Collective drain order.
    pub scheduling: SchedulingPolicy,
    /// Whether ring chunks alternate between the two ring directions
    /// (bidirectional rings); `false` sends everything the + way.
    pub bidirectional_rings: bool,
    /// Global cap on in-flight ring chunks.
    pub max_inflight_chunks: usize,
}

impl Default for ExecutorOptions {
    fn default() -> Self {
        ExecutorOptions {
            granularity: Granularity::paper_default(),
            scheduling: SchedulingPolicy::Lifo,
            bidirectional_rings: true,
            max_inflight_chunks: MAX_INFLIGHT_CHUNKS,
        }
    }
}

/// Default cap on globally in-flight ring chunks.
const MAX_INFLIGHT_CHUNKS: usize = 128;
/// Sentinel: node has not started any phase of a chunk.
const NOT_STARTED: u16 = u16::MAX;

#[derive(Debug, Clone)]
enum Ev {
    /// Attempt to inject pending chunks (LIFO drain).
    TryInject,
    /// A chunk's TX DMA finished: charge the step-0 fetch and send.
    StepZero {
        coll: u32,
        chunk: u32,
        node: u32,
        phase: u16,
    },
    /// A ring message is ready at the egress port: transmit it.
    ///
    /// All link requests flow through this event so the FIFO link servers
    /// see them in global time order — transmitting directly at an
    /// engine-grant end would future-date reservations and serialize
    /// unrelated traffic behind them.
    Send {
        coll: u32,
        chunk: u32,
        node: u32,
        phase: u16,
        step: u16,
    },
    /// Ring message arrival at `node` for `(coll, chunk)` phase `phase`,
    /// step `step`.
    RingArrive {
        coll: u32,
        chunk: u32,
        node: u32,
        phase: u16,
        step: u16,
    },
    /// A node finished the final arrival processing of `phase`.
    PhaseDone {
        coll: u32,
        chunk: u32,
        node: u32,
        phase: u16,
    },
    /// Terminal RX-DMA drain finished at `node`.
    DrainDone { coll: u32, chunk: u32, node: u32 },
    /// An all-to-all message is ready to transmit hop `hop`.
    A2aSend {
        coll: u32,
        chunk: u32,
        flow: u32,
        hop: u16,
    },
    /// All-to-all flow arrived at hop `hop` of its route.
    A2aHop {
        coll: u32,
        chunk: u32,
        flow: u32,
        hop: u16,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CollKind {
    Ring,
    AllToAll,
}

/// Per-chunk, per-node ring execution state.
#[derive(Debug, Default)]
struct ChunkState {
    /// Current phase per node (`NOT_STARTED` before injection; `P` = in
    /// terminal drain; `P + 1` = done).
    node_phase: Vec<u16>,
    /// Arrivals processed in the current phase, per node.
    arr_count: Vec<u16>,
    /// Buffered early arrivals `(phase, step, time)` per node.
    pending: Vec<Vec<(u16, u16, SimTime)>>,
    /// Nodes that finished the terminal drain.
    nodes_done: usize,
    /// All-to-all: flows completed.
    flows_done: usize,
    /// All-to-all: total flows.
    flows_total: usize,
}

#[derive(Debug)]
struct Coll {
    plan: CollectivePlan,
    kind: CollKind,
    chunk_sizes: Vec<u64>,
    issued_at: SimTime,
    next_chunk: usize,
    /// Global injection sequence per chunk (assigned at injection).
    chunk_seq: Vec<u64>,
    chunks: Vec<Option<ChunkState>>,
    done_chunks: usize,
    completed_at: Option<SimTime>,
}

impl Coll {
    fn is_complete(&self) -> bool {
        self.completed_at.is_some()
    }
}

/// Waiting admission entry: chunk waiting for space in a phase partition.
#[derive(Debug, Clone, Copy)]
struct Waiter {
    coll: u32,
    chunk: u32,
    /// Phase whose partition is still held (released on success);
    /// `NOT_STARTED` when nothing is held (initial injection).
    held_phase: u16,
}

/// The executor: fabric + per-node engines + the event loop.
pub struct CollectiveExecutor {
    shape: TorusShape,
    net: Network,
    engines: Vec<Box<dyn CollectiveEngine>>,
    options: ExecutorOptions,
    queue: EventQueue<Ev>,
    colls: Vec<Coll>,
    /// LIFO stack of collectives with chunks left to inject.
    lifo: Vec<usize>,
    inflight: usize,
    max_inflight: usize,
    /// `admit_wait[node][phase]` — waiters ordered by global injection
    /// sequence. Admission follows this order strictly on every node, so
    /// all nodes keep *identical* resident chunk sets per partition —
    /// divergent orders (even/odd chunks ride opposite ring directions
    /// and skew arbitrarily) would let nodes hold disjoint sets that wait
    /// on each other's ring messages: a distributed deadlock.
    admit_wait: Vec<Vec<BTreeMap<u64, Waiter>>>,
    /// Global injection sequence counter.
    next_seq: u64,
    now: SimTime,
}

impl std::fmt::Debug for CollectiveExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollectiveExecutor")
            .field("shape", &self.shape)
            .field("collectives", &self.colls.len())
            .field("inflight", &self.inflight)
            .field("now", &self.now)
            .finish()
    }
}

impl CollectiveExecutor {
    /// Builds an executor over `shape` with one engine per node produced
    /// by `make_engine`.
    pub fn new(
        shape: TorusShape,
        net_params: NetworkParams,
        make_engine: impl Fn() -> Box<dyn CollectiveEngine>,
    ) -> CollectiveExecutor {
        Self::with_options(shape, net_params, ExecutorOptions::default(), make_engine)
    }

    /// Builds an executor with non-default [`ExecutorOptions`] (ablation
    /// studies).
    pub fn with_options(
        shape: TorusShape,
        net_params: NetworkParams,
        options: ExecutorOptions,
        make_engine: impl Fn() -> Box<dyn CollectiveEngine>,
    ) -> CollectiveExecutor {
        let engines = (0..shape.nodes()).map(|_| make_engine()).collect();
        let max_inflight = options.max_inflight_chunks.max(1);
        CollectiveExecutor {
            shape,
            net: Network::new(shape, net_params),
            engines,
            options,
            queue: EventQueue::new(),
            colls: Vec::new(),
            lifo: Vec::new(),
            inflight: 0,
            max_inflight,
            admit_wait: vec![Vec::new(); shape.nodes()],
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The fabric's topology.
    pub fn shape(&self) -> TorusShape {
        self.shape
    }

    /// The network (throughput/utilization meters).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Current simulation time (latest processed event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Per-phase SRAM-partition weights for a plan (Section IV-I:
    /// bandwidth × chunk size). Used to size ACE endpoints.
    pub fn phase_weights(plan: &CollectivePlan, net: &NetworkParams) -> Vec<f64> {
        let raw: Vec<f64> = plan
            .phases()
            .iter()
            .map(|p| {
                let bw = match p.dim {
                    Some(Dim::Local) => net.intra.bandwidth_gbps * 2.0,
                    Some(_) => net.inter.bandwidth_gbps * 2.0,
                    None => net.intra.bandwidth_gbps * 2.0 + net.inter.bandwidth_gbps * 4.0,
                };
                bw * p.input_fraction
            })
            .collect();
        // Floor each phase at 15 % of the largest weight: latency-dominated
        // inter-package phases need enough resident chunks to cover the
        // 500-cycle link latency, which the raw bandwidth-proportional
        // heuristic under-provisions on large tori.
        let max = raw.iter().cloned().fold(f64::MIN, f64::max);
        raw.into_iter().map(|w| w.max(0.15 * max)).collect()
    }

    /// Issues a collective of `op` with per-node `payload_bytes` at time
    /// `at`. Returns a handle for completion queries.
    pub fn issue(&mut self, op: CollectiveOp, payload_bytes: u64, at: SimTime) -> CollHandle {
        let plan = CollectivePlan::for_op(op, self.shape);
        let kind = match op {
            CollectiveOp::AllToAll => CollKind::AllToAll,
            _ => CollKind::Ring,
        };
        let chunk_sizes = match kind {
            CollKind::Ring => self.options.granularity.chunks(payload_bytes),
            CollKind::AllToAll => {
                // Chunk the per-destination slice; flows are (dst, chunk).
                let n = self.shape.nodes() as u64;
                self.options.granularity.chunks(payload_bytes / n.max(1))
            }
        };
        let id = self.colls.len();
        let n_chunks = chunk_sizes.len();
        self.colls.push(Coll {
            plan,
            kind,
            chunk_sizes,
            issued_at: at,
            next_chunk: 0,
            chunk_seq: vec![u64::MAX; n_chunks],
            chunks: (0..n_chunks).map(|_| None).collect(),
            done_chunks: 0,
            completed_at: if n_chunks == 0 { Some(at) } else { None },
        });
        if n_chunks > 0 {
            self.lifo.push(id);
            let t = at.max(self.queue.now());
            self.queue.schedule(t, Ev::TryInject);
        }
        CollHandle(id)
    }

    /// Whether `coll` has completed.
    pub fn is_complete(&self, coll: CollHandle) -> bool {
        self.colls[coll.0].is_complete()
    }

    /// Completion time, if completed.
    pub fn completion_time(&self, coll: CollHandle) -> Option<SimTime> {
        self.colls[coll.0].completed_at
    }

    /// Processes events up to and including time `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            let (time, ev) = self.queue.pop().expect("peeked");
            self.now = time;
            self.handle(time, ev);
        }
        self.now = self.now.max(t);
    }

    /// Runs until `coll` completes; returns its completion time.
    ///
    /// # Panics
    ///
    /// Panics if the event queue drains without completing the collective
    /// (a deadlock — indicates an internal invariant violation).
    pub fn run_until_complete(&mut self, coll: CollHandle) -> SimTime {
        while !self.colls[coll.0].is_complete() {
            let (time, ev) = self
                .queue
                .pop()
                .unwrap_or_else(|| panic!("executor deadlock waiting on collective {}", coll.0));
            self.now = time;
            self.handle(time, ev);
        }
        self.colls[coll.0].completed_at.expect("completed")
    }

    /// Drains every pending event; returns the final event time.
    pub fn run_to_idle(&mut self) -> SimTime {
        while let Some((time, ev)) = self.queue.pop() {
            self.now = time;
            self.handle(time, ev);
        }
        self.now
    }

    /// ACE utilization (node 0) over `[0, horizon]`, when the engine
    /// tracks it.
    pub fn ace_utilization(&self, horizon: SimTime) -> Option<f64> {
        self.engines[0].utilization(horizon)
    }

    /// Per-node HBM traffic generated by communication (node 0).
    pub fn comm_mem_traffic_bytes(&self) -> u64 {
        self.engines[0].mem_traffic_bytes()
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::TryInject => self.drain_lifo(now),
            Ev::StepZero {
                coll,
                chunk,
                node,
                phase,
            } => {
                self.step_zero(now, coll as usize, chunk as usize, node as usize, phase);
            }
            Ev::Send {
                coll,
                chunk,
                node,
                phase,
                step,
            } => {
                self.ring_send(
                    now,
                    coll as usize,
                    chunk as usize,
                    node as usize,
                    phase,
                    step,
                );
            }
            Ev::RingArrive {
                coll,
                chunk,
                node,
                phase,
                step,
            } => {
                self.ring_arrive(
                    now,
                    coll as usize,
                    chunk as usize,
                    node as usize,
                    phase,
                    step,
                );
            }
            Ev::PhaseDone {
                coll,
                chunk,
                node,
                phase,
            } => {
                self.phase_done(now, coll as usize, chunk as usize, node as usize, phase);
            }
            Ev::DrainDone { coll, chunk, node } => {
                self.drain_done(now, coll as usize, chunk as usize, node as usize);
            }
            Ev::A2aSend {
                coll,
                chunk,
                flow,
                hop,
            } => {
                self.a2a_send(
                    now,
                    coll as usize,
                    chunk as usize,
                    flow as usize,
                    hop as usize,
                );
            }
            Ev::A2aHop {
                coll,
                chunk,
                flow,
                hop,
            } => {
                self.a2a_hop(
                    now,
                    coll as usize,
                    chunk as usize,
                    flow as usize,
                    hop as usize,
                );
            }
        }
    }

    /// Injects chunks from the most recently issued pending collectives
    /// while in-flight capacity remains.
    fn drain_lifo(&mut self, now: SimTime) {
        while self.inflight < self.max_inflight {
            // Pick the next collective with chunks remaining per policy.
            let pick = match self.options.scheduling {
                SchedulingPolicy::Lifo => self.lifo.last().copied(),
                SchedulingPolicy::Fifo => self.lifo.first().copied(),
            };
            let Some(cid) = pick else { break };
            if self.colls[cid].next_chunk >= self.colls[cid].chunk_sizes.len() {
                match self.options.scheduling {
                    SchedulingPolicy::Lifo => {
                        self.lifo.pop();
                    }
                    SchedulingPolicy::Fifo => {
                        self.lifo.remove(0);
                    }
                }
                continue;
            }
            let chunk = self.colls[cid].next_chunk;
            self.colls[cid].next_chunk += 1;
            self.colls[cid].chunk_seq[chunk] = self.next_seq;
            self.next_seq += 1;
            self.inflight += 1;
            let start = now.max(self.colls[cid].issued_at);
            match self.colls[cid].kind {
                CollKind::Ring => self.inject_ring_chunk(start, cid, chunk),
                CollKind::AllToAll => self.inject_a2a_chunk(start, cid, chunk),
            }
        }
    }

    // ------------------------------------------------------------------
    // Ring collectives
    // ------------------------------------------------------------------

    fn ensure_chunk_state(&mut self, cid: usize, chunk: usize) {
        let nodes = self.shape.nodes();
        let coll = &mut self.colls[cid];
        if coll.chunks[chunk].is_none() {
            coll.chunks[chunk] = Some(ChunkState {
                node_phase: vec![NOT_STARTED; nodes],
                arr_count: vec![0; nodes],
                pending: vec![Vec::new(); nodes],
                nodes_done: 0,
                flows_done: 0,
                flows_total: 0,
            });
        }
    }

    /// Bytes a chunk occupies in the partition of `phase` (`P` = terminal).
    fn admit_bytes(&self, cid: usize, chunk: usize, phase: u16) -> u64 {
        let coll = &self.colls[cid];
        let size = coll.chunk_sizes[chunk];
        let phases = coll.plan.phases();
        if (phase as usize) < phases.len() {
            ((size as f64) * phases[phase as usize].input_fraction).ceil() as u64
        } else {
            // Terminal: the final result (full chunk for all-reduce).
            ((size as f64) * phases.last().expect("plan nonempty").output_fraction()).ceil() as u64
        }
    }

    fn inject_ring_chunk(&mut self, now: SimTime, cid: usize, chunk: usize) {
        self.ensure_chunk_state(cid, chunk);
        for node in 0..self.shape.nodes() {
            self.request_phase(now, cid, chunk, node, 0, NOT_STARTED);
        }
    }

    /// Requests admission into `phase` for `(cid, chunk)` at `node`,
    /// releasing `held_phase` on success. Queues a waiter on failure or
    /// when earlier-sequence chunks are already waiting for the same
    /// partition (strict global admission order; see `admit_wait`).
    fn request_phase(
        &mut self,
        now: SimTime,
        cid: usize,
        chunk: usize,
        node: usize,
        phase: u16,
        held_phase: u16,
    ) {
        let p = phase as usize;
        if self.admit_wait[node].len() <= p {
            self.admit_wait[node].resize_with(p + 1, BTreeMap::new);
        }
        let bytes = self.admit_bytes(cid, chunk, phase);
        if self.admit_wait[node][p].is_empty() && self.engines[node].try_admit(p, bytes, now) {
            if held_phase != NOT_STARTED {
                let held_bytes = self.admit_bytes(cid, chunk, held_phase);
                self.engines[node].release(held_phase as usize, held_bytes, now);
                self.retry_waiters(now, node);
            }
            self.start_phase(now, cid, chunk, node, phase);
        } else {
            let seq = self.colls[cid].chunk_seq[chunk];
            debug_assert_ne!(seq, u64::MAX, "chunk admitted before injection");
            self.admit_wait[node][p].insert(
                seq,
                Waiter {
                    coll: cid as u32,
                    chunk: chunk as u32,
                    held_phase,
                },
            );
        }
    }

    /// Retries queued admissions at `node` after a partition release.
    ///
    /// Per phase, waiters are admitted strictly in global sequence order,
    /// stopping at the first that does not fit. A successful waiter
    /// releases the partition it held, which can unblock waiters of
    /// another phase — passes repeat until no progress is made.
    fn retry_waiters(&mut self, now: SimTime, node: usize) {
        loop {
            let mut progress = false;
            for p in 0..self.admit_wait[node].len() {
                while let Some((&seq, &w)) = self.admit_wait[node][p].iter().next() {
                    let bytes = self.admit_bytes(w.coll as usize, w.chunk as usize, p as u16);
                    if !self.engines[node].try_admit(p, bytes, now) {
                        break;
                    }
                    self.admit_wait[node][p].remove(&seq);
                    if w.held_phase != NOT_STARTED {
                        let held =
                            self.admit_bytes(w.coll as usize, w.chunk as usize, w.held_phase);
                        self.engines[node].release(w.held_phase as usize, held, now);
                    }
                    progress = true;
                    self.start_phase(now, w.coll as usize, w.chunk as usize, node, p as u16);
                }
            }
            if !progress {
                break;
            }
        }
    }

    /// Phase entry: run the TX DMA for phase 0, kick off the terminal
    /// drain for phase `P`, otherwise send ring step 0.
    fn start_phase(&mut self, now: SimTime, cid: usize, chunk: usize, node: usize, phase: u16) {
        let n_phases = self.colls[cid].plan.phases().len() as u16;
        {
            let st = self.colls[cid].chunks[chunk].as_mut().expect("chunk state");
            st.node_phase[node] = phase;
            st.arr_count[node] = 0;
        }
        if phase == n_phases {
            // Terminal drain: RX DMA back to HBM.
            let bytes = self.admit_bytes(cid, chunk, phase);
            let done = self.engines[node].chunk_complete(now, bytes);
            self.queue.schedule(
                done.max(now),
                Ev::DrainDone {
                    coll: cid as u32,
                    chunk: chunk as u32,
                    node: node as u32,
                },
            );
            return;
        }
        if phase == 0 {
            // TX DMA stages the chunk into the engine; the step-0 send
            // fires when the data is resident.
            let size = self.colls[cid].chunk_sizes[chunk];
            let staged = self.engines[node].chunk_inject(now, size);
            self.queue.schedule(
                staged.max(now),
                Ev::StepZero {
                    coll: cid as u32,
                    chunk: chunk as u32,
                    node: node as u32,
                    phase,
                },
            );
        } else {
            self.step_zero(now, cid, chunk, node, phase);
        }
        // Replay any arrivals buffered for this phase.
        self.replay_pending(now, cid, chunk, node, phase);
    }

    /// Charges the step-0 fetch and schedules its transmission.
    fn step_zero(&mut self, now: SimTime, cid: usize, chunk: usize, node: usize, phase: u16) {
        let shard = self.shard_bytes(cid, chunk, phase);
        let ready = self.engines[node].fetch_and_send(now, shard, phase as usize);
        self.queue.schedule(
            ready.max(now),
            Ev::Send {
                coll: cid as u32,
                chunk: chunk as u32,
                node: node as u32,
                phase,
                step: 0,
            },
        );
    }

    fn replay_pending(&mut self, now: SimTime, cid: usize, chunk: usize, node: usize, phase: u16) {
        let buffered: Vec<(u16, u16, SimTime)> = {
            let st = self.colls[cid].chunks[chunk].as_mut().expect("chunk state");
            let (ready, rest): (Vec<_>, Vec<_>) = st.pending[node]
                .drain(..)
                .partition(|(p, _, _)| *p == phase);
            st.pending[node] = rest;
            ready
        };
        for (p, s, at) in buffered {
            self.ring_arrive(now.max(at), cid, chunk, node, p, s);
        }
    }

    /// Per-node shard size moved in one ring step of `phase`.
    fn shard_bytes(&self, cid: usize, chunk: usize, phase: u16) -> u64 {
        let coll = &self.colls[cid];
        let spec = coll.plan.phases()[phase as usize];
        let input = coll.chunk_sizes[chunk] as f64 * spec.input_fraction;
        let k = spec.ring_size as f64;
        let shard = match spec.kind {
            // All-gather forwards the whole phase input each step.
            PhaseKind::AllGather => input,
            _ => input / k,
        };
        (shard.ceil() as u64).max(1)
    }

    /// Transmits a ring message for step `step` of `phase` from `node` to
    /// its ring neighbor, scheduling the arrival event. Runs as the `Send`
    /// event handler so link requests are issued in global time order.
    fn ring_send(
        &mut self,
        now: SimTime,
        cid: usize,
        chunk: usize,
        node: usize,
        phase: u16,
        step: u16,
    ) {
        let bytes = self.shard_bytes(cid, chunk, phase);
        let spec = self.colls[cid].plan.phases()[phase as usize];
        let dim = spec.dim.expect("ring phases have a dimension");
        // Bidirectional rings: alternate chunk parity across directions
        // (unidirectional mode sends everything the + way — an ablation).
        let plus = !self.options.bidirectional_rings || chunk.is_multiple_of(2);
        let port = Port::new(dim, plus);
        let dst = self.shape.neighbor(NodeId(node), dim, plus);
        let out = self.net.transmit(now, NodeId(node), port, bytes);
        self.queue.schedule(
            out.arrival,
            Ev::RingArrive {
                coll: cid as u32,
                chunk: chunk as u32,
                node: dst.index() as u32,
                phase,
                step,
            },
        );
    }

    fn ring_arrive(
        &mut self,
        now: SimTime,
        cid: usize,
        chunk: usize,
        node: usize,
        phase: u16,
        step: u16,
    ) {
        // Buffer arrivals for phases the node has not entered yet.
        {
            let st = self.colls[cid].chunks[chunk].as_mut().expect("chunk state");
            let np = st.node_phase[node];
            if np == NOT_STARTED || np < phase {
                st.pending[node].push((phase, step, now));
                return;
            }
            debug_assert_eq!(np, phase, "arrival for a past phase");
            st.arr_count[node] += 1;
        }
        let spec = self.colls[cid].plan.phases()[phase as usize];
        let k = spec.ring_size as u16;
        let final_step = match spec.kind {
            PhaseKind::ReduceScatter | PhaseKind::AllGather => k - 2,
            PhaseKind::RingAllReduce => 2 * k - 3,
            PhaseKind::DirectAllToAll => unreachable!("all-to-all is not a ring phase"),
        };
        let shard = self.shard_bytes(cid, chunk, phase);
        let engine = &mut self.engines[node];
        // The landing write and the processing of the step pipeline
        // through independent resources; both are charged at the arrival
        // time and the step completes when the slowest finishes.
        let landed = engine.receive(now, shard, phase as usize);
        let reduces = match spec.kind {
            PhaseKind::ReduceScatter => true,
            PhaseKind::AllGather => false,
            PhaseKind::RingAllReduce => step <= k - 2,
            PhaseKind::DirectAllToAll => false,
        };
        if step < final_step {
            let ready = if reduces {
                engine.reduce_and_send(now, shard, phase as usize)
            } else {
                engine.fetch_and_send(now, shard, phase as usize)
            };
            self.queue.schedule(
                ready.max(landed).max(now),
                Ev::Send {
                    coll: cid as u32,
                    chunk: chunk as u32,
                    node: node as u32,
                    phase,
                    step: step + 1,
                },
            );
        } else {
            // Final arrival of the phase.
            let done = if reduces {
                engine.reduce_and_store(now, shard, phase as usize)
            } else {
                landed
            };
            self.queue.schedule(
                done.max(now),
                Ev::PhaseDone {
                    coll: cid as u32,
                    chunk: chunk as u32,
                    node: node as u32,
                    phase,
                },
            );
        }
    }

    fn phase_done(&mut self, now: SimTime, cid: usize, chunk: usize, node: usize, phase: u16) {
        let next = phase + 1;
        self.request_phase(now, cid, chunk, node, next, phase);
    }

    fn drain_done(&mut self, now: SimTime, cid: usize, chunk: usize, node: usize) {
        let n_phases = self.colls[cid].plan.phases().len() as u16;
        let terminal_bytes = self.admit_bytes(cid, chunk, n_phases);
        self.engines[node].release(n_phases as usize, terminal_bytes, now);
        self.retry_waiters(now, node);
        let all_done = {
            let st = self.colls[cid].chunks[chunk].as_mut().expect("chunk state");
            st.node_phase[node] = n_phases + 1;
            st.nodes_done += 1;
            st.nodes_done == self.shape.nodes()
        };
        if all_done {
            self.chunk_complete(now, cid, chunk);
        }
    }

    fn chunk_complete(&mut self, now: SimTime, cid: usize, chunk: usize) {
        // Free the per-chunk state eagerly: large payloads create many
        // chunks and keeping their vectors alive is wasteful.
        self.colls[cid].chunks[chunk] = None;
        self.colls[cid].done_chunks += 1;
        self.inflight -= 1;
        if self.colls[cid].done_chunks == self.colls[cid].chunk_sizes.len() {
            self.colls[cid].completed_at = Some(now);
        }
        self.drain_lifo(now);
    }

    // ------------------------------------------------------------------
    // Direct all-to-all
    // ------------------------------------------------------------------

    /// Flow index encoding: `flow = src * (nodes - 1) + dst_offset` where
    /// the destination is `(src + 1 + dst_offset) % nodes`.
    fn a2a_flow_endpoints(&self, flow: usize) -> (usize, usize) {
        let n = self.shape.nodes();
        let src = flow / (n - 1);
        let off = flow % (n - 1);
        let dst = (src + 1 + off) % n;
        (src, dst)
    }

    fn inject_a2a_chunk(&mut self, now: SimTime, cid: usize, chunk: usize) {
        self.ensure_chunk_state(cid, chunk);
        let n = self.shape.nodes();
        let flows = n * (n - 1);
        {
            let st = self.colls[cid].chunks[chunk].as_mut().expect("chunk state");
            st.flows_total = flows;
        }
        let bytes = self.colls[cid].chunk_sizes[chunk];
        for flow in 0..flows {
            let (src, _dst) = self.a2a_flow_endpoints(flow);
            // Stage the source's slice buffer once per chunk. All-to-all
            // is single-phase: it shares phase 0's partition and FSMs
            // (Section V).
            let staged = if flow % (n - 1) == 0 {
                self.engines[src].chunk_inject(now, bytes)
            } else {
                now
            };
            let ready = self.engines[src].fetch_and_send(now, bytes, 0).max(staged);
            self.queue.schedule(
                ready.max(now),
                Ev::A2aSend {
                    coll: cid as u32,
                    chunk: chunk as u32,
                    flow: flow as u32,
                    hop: 0,
                },
            );
        }
    }

    /// Transmits hop `hop` of an all-to-all flow at event time.
    fn a2a_send(&mut self, now: SimTime, cid: usize, chunk: usize, flow: usize, hop: usize) {
        let (src, dst) = self.a2a_flow_endpoints(flow);
        let route = self.shape.route(NodeId(src), NodeId(dst));
        let bytes = self.colls[cid].chunk_sizes[chunk];
        let h = route[hop];
        let out = self.net.transmit(now, h.from, h.port, bytes);
        self.queue.schedule(
            out.arrival,
            Ev::A2aHop {
                coll: cid as u32,
                chunk: chunk as u32,
                flow: flow as u32,
                hop: hop as u16 + 1,
            },
        );
    }

    fn a2a_hop(&mut self, now: SimTime, cid: usize, chunk: usize, flow: usize, hop: usize) {
        let (src, dst) = self.a2a_flow_endpoints(flow);
        let route = self.shape.route(NodeId(src), NodeId(dst));
        let bytes = self.colls[cid].chunk_sizes[chunk];
        if hop < route.len() {
            // Intermediate endpoint: store-and-forward, then next hop.
            let at = route[hop].from.index();
            let ready = self.engines[at].store_and_forward(now, bytes, 0);
            self.queue.schedule(
                ready.max(now),
                Ev::A2aSend {
                    coll: cid as u32,
                    chunk: chunk as u32,
                    flow: flow as u32,
                    hop: hop as u16,
                },
            );
        } else {
            // Final arrival at the destination.
            let landed = self.engines[dst].receive(now, bytes, 0);
            let done = self.engines[dst].chunk_complete(landed, bytes);
            let finished = {
                let st = self.colls[cid].chunks[chunk].as_mut().expect("chunk state");
                st.flows_done += 1;
                st.flows_done == st.flows_total
            };
            if finished {
                self.chunk_complete(done.max(now), cid, chunk);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn executor(config: SystemConfig, shape: TorusShape) -> CollectiveExecutor {
        let params = NetworkParams::paper_default();
        let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, shape);
        let weights = CollectiveExecutor::phase_weights(&plan, &params);
        CollectiveExecutor::new(shape, params, move || config.make_engine(&weights))
    }

    fn shape442() -> TorusShape {
        TorusShape::new(4, 2, 2).unwrap()
    }

    #[test]
    fn all_reduce_completes_on_all_configs() {
        for config in SystemConfig::ALL {
            let mut ex = executor(config, shape442());
            let h = ex.issue(CollectiveOp::AllReduce, 1 << 20, SimTime::ZERO);
            let t = ex.run_until_complete(h);
            assert!(t.cycles() > 0, "{config}: zero completion time");
            assert!(ex.is_complete(h));
        }
    }

    #[test]
    fn ideal_is_fastest_baseline_comm_opt_beats_comp_opt() {
        let run = |config| {
            let mut ex = executor(config, shape442());
            let h = ex.issue(CollectiveOp::AllReduce, 16 << 20, SimTime::ZERO);
            ex.run_until_complete(h).cycles()
        };
        let ideal = run(SystemConfig::Ideal);
        let ace = run(SystemConfig::Ace);
        let comm = run(SystemConfig::BaselineCommOpt);
        let comp = run(SystemConfig::BaselineCompOpt);
        assert!(ideal <= ace, "ideal {ideal} vs ace {ace}");
        assert!(ace < comp, "ace {ace} vs comp-opt {comp}");
        assert!(comm < comp, "comm-opt {comm} vs comp-opt {comp}");
    }

    #[test]
    fn ace_is_close_to_ideal() {
        // Fig. 5: ACE with 128 GB/s reaches ≈90 % of ideal performance.
        let run = |config| {
            let mut ex = executor(config, shape442());
            let h = ex.issue(CollectiveOp::AllReduce, 16 << 20, SimTime::ZERO);
            ex.run_until_complete(h).cycles() as f64
        };
        let ideal = run(SystemConfig::Ideal);
        let ace = run(SystemConfig::Ace);
        assert!(ace / ideal < 1.6, "ACE at {:.2}x ideal", ace / ideal);
    }

    #[test]
    fn larger_payload_takes_longer() {
        let mut ex = executor(SystemConfig::Ace, shape442());
        let small = ex.issue(CollectiveOp::AllReduce, 1 << 20, SimTime::ZERO);
        let ts = ex.run_until_complete(small);
        let mut ex2 = executor(SystemConfig::Ace, shape442());
        let large = ex2.issue(CollectiveOp::AllReduce, 8 << 20, SimTime::ZERO);
        let tl = ex2.run_until_complete(large);
        assert!(tl > ts);
    }

    #[test]
    fn all_to_all_completes() {
        for config in [
            SystemConfig::BaselineCommOpt,
            SystemConfig::Ace,
            SystemConfig::Ideal,
        ] {
            let mut ex = executor(config, shape442());
            let h = ex.issue(CollectiveOp::AllToAll, 1 << 20, SimTime::ZERO);
            let t = ex.run_until_complete(h);
            assert!(t.cycles() > 0, "{config}");
        }
    }

    #[test]
    fn lifo_priority_favors_later_issue() {
        // Issue a huge collective, then a tiny one: LIFO lets the tiny
        // late-comer finish long before the big early one.
        let mut ex = executor(SystemConfig::Ace, shape442());
        let big = ex.issue(CollectiveOp::AllReduce, 64 << 20, SimTime::ZERO);
        let small = ex.issue(CollectiveOp::AllReduce, 256 << 10, SimTime::from_cycles(1));
        let t_small = ex.run_until_complete(small);
        let t_big = ex.run_until_complete(big);
        assert!(t_small < t_big);
    }

    #[test]
    fn zero_payload_all_to_all_completes_immediately() {
        let mut ex = executor(SystemConfig::Ace, shape442());
        let h = ex.issue(CollectiveOp::AllToAll, 0, SimTime::from_cycles(3));
        assert!(ex.is_complete(h));
    }

    #[test]
    fn issue_at_future_time_defers_start() {
        let mut ex = executor(SystemConfig::Ideal, shape442());
        let h = ex.issue(
            CollectiveOp::AllReduce,
            1 << 20,
            SimTime::from_cycles(10_000),
        );
        let done = ex.run_until_complete(h);
        assert!(
            done.cycles() > 10_000,
            "work cannot finish before it starts"
        );
    }

    #[test]
    fn zero_payload_completes_immediately() {
        let mut ex = executor(SystemConfig::Ace, shape442());
        let h = ex.issue(CollectiveOp::AllReduce, 0, SimTime::from_cycles(5));
        assert!(ex.is_complete(h));
        assert_eq!(ex.completion_time(h), Some(SimTime::from_cycles(5)));
    }

    #[test]
    fn network_records_traffic() {
        let mut ex = executor(SystemConfig::Ideal, shape442());
        let h = ex.issue(CollectiveOp::AllReduce, 4 << 20, SimTime::ZERO);
        ex.run_until_complete(h);
        assert!(ex.network().total_bytes() > 0);
        assert!(ex.network().achieved_gbps_per_npu() > 0.0);
    }

    #[test]
    fn run_until_respects_time_bound() {
        let mut ex = executor(SystemConfig::Ace, shape442());
        let h = ex.issue(CollectiveOp::AllReduce, 16 << 20, SimTime::ZERO);
        ex.run_until(SimTime::from_cycles(10));
        assert!(!ex.is_complete(h));
        assert!(ex.now() >= SimTime::from_cycles(10));
    }

    #[test]
    fn mem_traffic_baseline_exceeds_ace() {
        let mut base = executor(SystemConfig::BaselineCommOpt, shape442());
        let h = base.issue(CollectiveOp::AllReduce, 4 << 20, SimTime::ZERO);
        base.run_until_complete(h);
        let mut ace = executor(SystemConfig::Ace, shape442());
        let h = ace.issue(CollectiveOp::AllReduce, 4 << 20, SimTime::ZERO);
        ace.run_until_complete(h);
        let b = base.comm_mem_traffic_bytes();
        let a = ace.comm_mem_traffic_bytes();
        assert!(b > 2 * a, "baseline {b} vs ACE {a}");
    }

    #[test]
    fn standalone_reduce_scatter_and_all_gather_complete() {
        for op in [CollectiveOp::ReduceScatter, CollectiveOp::AllGather] {
            for config in [
                SystemConfig::BaselineCommOpt,
                SystemConfig::Ace,
                SystemConfig::Ideal,
            ] {
                let mut ex = executor(config, shape442());
                let h = ex.issue(op, 4 << 20, SimTime::ZERO);
                let t = ex.run_until_complete(h);
                assert!(t.cycles() > 0, "{op:?} on {config}");
            }
        }
    }

    #[test]
    fn reduce_scatter_is_cheaper_than_all_reduce() {
        // RS moves roughly half the bytes of AR (no all-gather half).
        let mut rs = executor(SystemConfig::Ideal, shape442());
        let h = rs.issue(CollectiveOp::ReduceScatter, 16 << 20, SimTime::ZERO);
        let t_rs = rs.run_until_complete(h);
        let mut ar = executor(SystemConfig::Ideal, shape442());
        let h = ar.issue(CollectiveOp::AllReduce, 16 << 20, SimTime::ZERO);
        let t_ar = ar.run_until_complete(h);
        assert!(t_rs < t_ar, "RS {t_rs} vs AR {t_ar}");
    }

    #[test]
    fn fifo_scheduling_starves_late_collectives() {
        let opts = ExecutorOptions {
            scheduling: SchedulingPolicy::Fifo,
            ..Default::default()
        };
        let params = NetworkParams::paper_default();
        let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, shape442());
        let weights = CollectiveExecutor::phase_weights(&plan, &params);
        let mut ex = CollectiveExecutor::with_options(shape442(), params, opts, move || {
            SystemConfig::Ace.make_engine(&weights)
        });
        let big = ex.issue(CollectiveOp::AllReduce, 32 << 20, SimTime::ZERO);
        let small = ex.issue(CollectiveOp::AllReduce, 256 << 10, SimTime::from_cycles(1));
        let t_small = ex.run_until_complete(small);
        let t_big = ex.run_until_complete(big);
        // Under FIFO the small late-comer drains after (or with) the big one.
        assert!(
            t_small.cycles() + 1 >= t_big.cycles(),
            "small {t_small} big {t_big}"
        );
    }

    #[test]
    fn unidirectional_rings_are_slower() {
        let run = |bidir: bool| {
            let opts = ExecutorOptions {
                bidirectional_rings: bidir,
                ..Default::default()
            };
            let params = NetworkParams::paper_default();
            let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, shape442());
            let weights = CollectiveExecutor::phase_weights(&plan, &params);
            let mut ex = CollectiveExecutor::with_options(shape442(), params, opts, move || {
                SystemConfig::Ideal.make_engine(&weights)
            });
            let h = ex.issue(CollectiveOp::AllReduce, 16 << 20, SimTime::ZERO);
            ex.run_until_complete(h).cycles()
        };
        let bi = run(true);
        let uni = run(false);
        assert!(uni as f64 > bi as f64 * 1.5, "uni {uni} vs bi {bi}");
    }

    #[test]
    fn tiny_inflight_cap_throttles() {
        let run = |cap: usize| {
            let opts = ExecutorOptions {
                max_inflight_chunks: cap,
                ..Default::default()
            };
            let params = NetworkParams::paper_default();
            let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, shape442());
            let weights = CollectiveExecutor::phase_weights(&plan, &params);
            let mut ex = CollectiveExecutor::with_options(shape442(), params, opts, move || {
                SystemConfig::Ace.make_engine(&weights)
            });
            let h = ex.issue(CollectiveOp::AllReduce, 8 << 20, SimTime::ZERO);
            ex.run_until_complete(h).cycles()
        };
        assert!(run(2) > run(64));
    }

    #[test]
    fn ace_utilization_reported_only_for_ace() {
        let mut ace = executor(SystemConfig::Ace, shape442());
        let h = ace.issue(CollectiveOp::AllReduce, 4 << 20, SimTime::ZERO);
        let t = ace.run_until_complete(h);
        assert!(ace.ace_utilization(t).unwrap() > 0.0);
        let base = executor(SystemConfig::BaselineCommOpt, shape442());
        assert!(base.ace_utilization(SimTime::from_cycles(1)).is_none());
    }
}
