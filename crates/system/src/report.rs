//! Simulation reports: the metrics of Section V ("our metrics are total
//! computation and exposed communication") plus the utilization series of
//! Fig. 10 and the ACE-busy figures of Fig. 9b.

use ace_simcore::Frequency;
use ace_trace::Attribution;

/// The result of simulating two training iterations.
#[derive(Debug, Clone)]
pub struct IterationReport {
    pub(crate) workload: String,
    pub(crate) config: String,
    pub(crate) nodes: usize,
    pub(crate) freq: Frequency,
    pub(crate) iterations: u32,
    pub(crate) total_cycles: u64,
    pub(crate) compute_cycles: u64,
    pub(crate) exposed_comm_cycles: u64,
    pub(crate) compute_series: Vec<f64>,
    pub(crate) network_series: Vec<f64>,
    pub(crate) ace_util_fwd: Option<f64>,
    pub(crate) ace_util_bwd: Option<f64>,
    pub(crate) ace_busy_cycles: Option<u64>,
    pub(crate) comm_mem_traffic_bytes: u64,
    pub(crate) network_bytes: u64,
    pub(crate) past_schedules: u64,
    pub(crate) attribution: Attribution,
}

impl IterationReport {
    /// Workload name.
    pub fn workload(&self) -> &str {
        &self.workload
    }

    /// Configuration name (Table VI).
    pub fn config(&self) -> &str {
        &self.config
    }

    /// Fabric size in NPUs.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of simulated iterations (2, per Section V).
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// End-to-end simulated time in cycles (all iterations).
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Total compute busy time in cycles.
    pub fn compute_cycles(&self) -> u64 {
        self.compute_cycles
    }

    /// Exposed (non-overlapped) communication in cycles.
    pub fn exposed_comm_cycles(&self) -> u64 {
        self.exposed_comm_cycles
    }

    /// End-to-end time in microseconds (all iterations) — the Fig. 11a
    /// y-axis is this quantity (total compute + total exposed comm).
    pub fn total_time_us(&self) -> f64 {
        self.total_cycles as f64 / self.freq.hz() * 1e6
    }

    /// Total compute in microseconds.
    pub fn total_compute_us(&self) -> f64 {
        self.compute_cycles as f64 / self.freq.hz() * 1e6
    }

    /// Exposed communication in microseconds.
    pub fn exposed_comm_us(&self) -> f64 {
        self.exposed_comm_cycles as f64 / self.freq.hz() * 1e6
    }

    /// Per-iteration time in microseconds.
    pub fn iteration_time_us(&self) -> f64 {
        self.total_time_us() / self.iterations.max(1) as f64
    }

    /// Fraction of the iteration that is exposed communication.
    pub fn exposed_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.exposed_comm_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Compute utilization per 1 K-cycle bucket (Fig. 10 upper curves).
    pub fn compute_series(&self) -> &[f64] {
        &self.compute_series
    }

    /// Network link utilization per 1 K-cycle bucket (Fig. 10 lower
    /// curves: fraction of links scheduling a flit).
    pub fn network_series(&self) -> &[f64] {
        &self.network_series
    }

    /// ACE utilization during the forward passes (Fig. 9b), if ACE.
    pub fn ace_util_fwd(&self) -> Option<f64> {
        self.ace_util_fwd
    }

    /// ACE utilization during back-propagation (Fig. 9b), if ACE.
    pub fn ace_util_bwd(&self) -> Option<f64> {
        self.ace_util_bwd
    }

    /// Exact ACE engine-busy cycles over the whole run, if ACE — the
    /// integer counter the Fig. 9b ratios are derived from.
    pub fn ace_busy_cycles(&self) -> Option<u64> {
        self.ace_busy_cycles
    }

    /// Events scheduled in the past and clamped by the event queue —
    /// always zero in a correct simulation; surfaced so release-mode
    /// sweeps can flag the invariant violation.
    pub fn past_schedules(&self) -> u64 {
        self.past_schedules
    }

    /// Bottleneck attribution: wall cycles decomposed into compute,
    /// per-pipe-bound communication and `other` buckets that sum exactly
    /// to [`total_cycles`](IterationReport::total_cycles).
    pub fn attribution(&self) -> Attribution {
        self.attribution
    }

    /// Per-node HBM bytes consumed by communication.
    pub fn comm_mem_traffic_bytes(&self) -> u64 {
        self.comm_mem_traffic_bytes
    }

    /// Total bytes the fabric carried.
    pub fn network_bytes(&self) -> u64 {
        self.network_bytes
    }

    /// Effective network bandwidth in GB/s per NPU over the whole run
    /// (the Fig. 11b "effective network BW utilization" proxy).
    pub fn effective_network_gbps_per_npu(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        let per_node = self.network_bytes as f64 / self.nodes as f64;
        per_node / self.total_cycles as f64 * self.freq.hz() / 1e9
    }
}

impl std::fmt::Display for IterationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} on {} NPUs [{}]: total {:.1} us (compute {:.1} us, exposed comm {:.1} us, {:.1}%)",
            self.workload,
            self.nodes,
            self.config,
            self.total_time_us(),
            self.total_compute_us(),
            self.exposed_comm_us(),
            self.exposed_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> IterationReport {
        IterationReport {
            workload: "Test".into(),
            config: "ACE".into(),
            nodes: 16,
            freq: ace_simcore::npu_frequency(),
            iterations: 2,
            total_cycles: 1_245_000,
            compute_cycles: 1_000_000,
            exposed_comm_cycles: 245_000,
            compute_series: vec![1.0, 0.5],
            network_series: vec![0.2, 0.8],
            ace_util_fwd: Some(0.1),
            ace_util_bwd: Some(0.9),
            ace_busy_cycles: Some(230_000),
            comm_mem_traffic_bytes: 1 << 20,
            network_bytes: 64 << 20,
            past_schedules: 0,
            attribution: Attribution {
                total_cycles: 1_245_000,
                compute_cycles: 1_000_000,
                network_cycles: 245_000,
                ..Attribution::default()
            },
        }
    }

    #[test]
    fn microsecond_conversions() {
        let r = report();
        // 1 245 000 cycles at 1245 MHz = 1000 us.
        assert!((r.total_time_us() - 1000.0).abs() < 1e-6);
        assert!((r.iteration_time_us() - 500.0).abs() < 1e-6);
        assert!((r.exposed_fraction() - 245_000.0 / 1_245_000.0).abs() < 1e-12);
    }

    #[test]
    fn accessors_roundtrip() {
        let r = report();
        assert_eq!(r.workload(), "Test");
        assert_eq!(r.config(), "ACE");
        assert_eq!(r.nodes(), 16);
        assert_eq!(r.iterations(), 2);
        assert_eq!(r.compute_series().len(), 2);
        assert_eq!(r.network_series().len(), 2);
        assert_eq!(r.ace_util_bwd(), Some(0.9));
        assert_eq!(r.ace_busy_cycles(), Some(230_000));
        assert_eq!(r.past_schedules(), 0);
        assert!(r.attribution().conserves());
        assert_eq!(r.attribution().total_cycles, r.total_cycles());
    }

    #[test]
    fn effective_bandwidth_math() {
        let r = report();
        // 64 MiB / 16 nodes / 1ms = 4 MiB/ms ≈ 4.19 GB/s.
        let g = r.effective_network_gbps_per_npu();
        assert!((g - 4.19).abs() < 0.05, "got {g}");
    }

    #[test]
    fn display_has_key_fields() {
        let s = report().to_string();
        assert!(s.contains("Test") && s.contains("ACE") && s.contains("compute"));
    }
}
