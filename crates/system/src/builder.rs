//! Fluent construction of training simulations.

use std::fmt;

use ace_net::{TopologySpec, TorusShape};
use ace_workloads::{Parallelism, Workload};

use crate::config::SystemConfig;
use crate::training::TrainingSim;

/// Errors from [`SystemBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// No workload was supplied.
    MissingWorkload,
    /// The topology was invalid.
    InvalidShape(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::MissingWorkload => f.write_str("no workload was supplied"),
            BuildError::InvalidShape(s) => write!(f, "invalid torus shape: {s}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder for [`TrainingSim`].
///
/// ```
/// use ace_system::{SystemBuilder, SystemConfig};
/// use ace_workloads::Workload;
///
/// let sim = SystemBuilder::new()
///     .topology(4, 2, 2)
///     .config(SystemConfig::BaselineCommOpt)
///     .workload(Workload::gnmt())
///     .build()
///     .unwrap();
/// let report = sim.run();
/// assert_eq!(report.nodes(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    l: usize,
    v: usize,
    h: usize,
    /// When set, overrides the `LxVxH` fields with an arbitrary topology.
    spec: Option<TopologySpec>,
    config: SystemConfig,
    workload: Option<Workload>,
    iterations: u32,
    optimized_embedding: bool,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SystemBuilder {
    /// Creates a builder with the paper defaults: a 4×2×2 torus, the ACE
    /// configuration, and 2 training iterations.
    pub fn new() -> SystemBuilder {
        SystemBuilder {
            l: 4,
            v: 2,
            h: 2,
            spec: None,
            config: SystemConfig::Ace,
            workload: None,
            iterations: 2,
            optimized_embedding: false,
        }
    }

    /// Sets the `LxVxH` torus shape (Section V notation). Validation is
    /// deferred to [`build`](SystemBuilder::build).
    pub fn topology(mut self, l: usize, v: usize, h: usize) -> SystemBuilder {
        self.l = l;
        self.v = v;
        self.h = h;
        self.spec = None;
        self
    }

    /// Sets an arbitrary topology (any [`TopologySpec`]: an N-dimension
    /// torus, a switch, or a hierarchical fabric), overriding
    /// [`topology`](SystemBuilder::topology).
    pub fn topology_spec(mut self, spec: impl Into<TopologySpec>) -> SystemBuilder {
        self.spec = Some(spec.into());
        self
    }

    /// Sets the endpoint configuration (Table VI).
    pub fn config(mut self, config: SystemConfig) -> SystemBuilder {
        self.config = config;
        self
    }

    /// Sets the workload.
    pub fn workload(mut self, workload: Workload) -> SystemBuilder {
        self.workload = Some(workload);
        self
    }

    /// Sets the number of simulated iterations (default 2, as in the
    /// paper).
    pub fn iterations(mut self, iterations: u32) -> SystemBuilder {
        self.iterations = iterations.max(1);
        self
    }

    /// Enables the DLRM optimized training loop (Fig. 12): embedding
    /// lookup/update of the next/previous iteration run in the background
    /// on a 1-SM / 80 GB/s carve-out.
    pub fn optimized_embedding(mut self, on: bool) -> SystemBuilder {
        self.optimized_embedding = on;
        self
    }

    /// Builds the simulator.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::MissingWorkload`] if no workload was set and
    /// [`BuildError::InvalidShape`] for degenerate torus shapes.
    pub fn build(self) -> Result<TrainingSim, BuildError> {
        let spec = match self.spec {
            Some(spec) => spec,
            None => TorusShape::new(self.l, self.v, self.h)
                .map_err(|e| BuildError::InvalidShape(e.to_string()))?
                .into(),
        };
        let workload = self.workload.ok_or(BuildError::MissingWorkload)?;
        // The embedding optimization only applies to hybrid workloads; it
        // is a silent no-op otherwise, matching the paper's usage.
        let optimized = self.optimized_embedding && workload.parallelism() == Parallelism::Hybrid;
        Ok(TrainingSim::new(
            self.config,
            workload,
            spec,
            self.iterations,
            optimized,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_workload_errors() {
        assert_eq!(
            SystemBuilder::new().build().unwrap_err(),
            BuildError::MissingWorkload
        );
    }

    #[test]
    fn invalid_shape_errors() {
        let err = SystemBuilder::new()
            .topology(0, 2, 2)
            .workload(Workload::resnet50())
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::InvalidShape(_)));
        assert!(err.to_string().contains("invalid torus shape"));
    }

    #[test]
    fn defaults_are_paper_defaults() {
        let sim = SystemBuilder::new()
            .workload(Workload::resnet50())
            .build()
            .unwrap();
        assert!(!sim.is_hybrid());
    }

    #[test]
    fn optimized_embedding_ignored_for_data_parallel() {
        // Should build and run without panicking even though ResNet-50 has
        // no embedding stage.
        let sim = SystemBuilder::new()
            .optimized_embedding(true)
            .workload(Workload::resnet50())
            .iterations(1)
            .build()
            .unwrap();
        assert!(!sim.is_hybrid());
    }
}
