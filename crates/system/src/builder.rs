//! Fluent construction of training simulations.

use std::fmt;

use ace_compute::NpuParams;
use ace_net::{NetworkParams, TopologySpec, TorusShape};
use ace_workloads::{LoweringOptions, Parallelism, Program, Workload, WorkloadSpec};

use crate::config::SystemConfig;
use crate::run::RunConditions;
use crate::training::TrainingSim;

/// Errors from [`SystemBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// No workload (or program) was supplied.
    MissingWorkload,
    /// The topology was invalid.
    InvalidShape(String),
    /// The workload (or a parallelism override) was inconsistent.
    InvalidWorkload(String),
    /// A user-supplied program failed [`Program::validate`].
    InvalidProgram(String),
    /// The [`RunConditions`] could not be realized on the topology —
    /// e.g. the fault spec disconnects the fabric or contention
    /// saturates a link.
    InvalidConditions(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::MissingWorkload => f.write_str("no workload was supplied"),
            BuildError::InvalidShape(s) => write!(f, "invalid torus shape: {s}"),
            BuildError::InvalidWorkload(s) => write!(f, "invalid workload: {s}"),
            BuildError::InvalidProgram(s) => write!(f, "invalid program: {s}"),
            BuildError::InvalidConditions(s) => write!(f, "invalid run conditions: {s}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// What the simulation runs: a concrete workload, a declarative spec
/// instantiated at build time, or an explicit task graph.
#[derive(Debug, Clone)]
enum WorkSource {
    Workload(Workload),
    Spec(WorkloadSpec),
    Program(Program),
}

/// Builder for [`TrainingSim`].
///
/// ```
/// use ace_system::{SystemBuilder, SystemConfig};
/// use ace_workloads::Workload;
///
/// let sim = SystemBuilder::new()
///     .topology(4, 2, 2)
///     .config(SystemConfig::BaselineCommOpt)
///     .workload(Workload::gnmt())
///     .build()
///     .unwrap();
/// let report = sim.run();
/// assert_eq!(report.nodes(), 16);
/// ```
///
/// NPU and network parameters default to the paper's platform and can be
/// overridden; workloads can come from a TOML [`WorkloadSpec`] or as a
/// pre-lowered [`Program`]:
///
/// ```
/// use ace_compute::NpuParams;
/// use ace_net::NetworkParams;
/// use ace_system::{SystemBuilder, SystemConfig};
/// use ace_workloads::WorkloadSpec;
///
/// let spec = WorkloadSpec::from_toml_str(r#"
///     name = "tiny-mlp"
///     batch_per_npu = 8
///     [[layer]]
///     fwd_flops = 1.0e9
///     fwd_bytes = 1.0e7
///     comm = "all-reduce"
///     comm_bytes = "2MB"
/// "#).unwrap();
///
/// let mut net = NetworkParams::paper_default();
/// net.inter.bandwidth_gbps = 50.0;   // double the scale-out links
/// let report = SystemBuilder::new()
///     .topology(2, 2, 1)
///     .config(SystemConfig::Ace)
///     .workload_spec(spec)
///     .npu_params(NpuParams::paper_default())
///     .net_params(net)
///     .iterations(1)
///     .build()
///     .unwrap()
///     .run();
/// assert_eq!(report.workload(), "tiny-mlp");
/// ```
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    l: usize,
    v: usize,
    h: usize,
    /// When set, overrides the `LxVxH` fields with an arbitrary topology.
    spec: Option<TopologySpec>,
    config: SystemConfig,
    source: Option<WorkSource>,
    parallelism: Option<Parallelism>,
    iterations: u32,
    optimized_embedding: bool,
    npu_params: Option<NpuParams>,
    net_params: Option<NetworkParams>,
    sim_threads: usize,
    conditions: RunConditions,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SystemBuilder {
    /// Creates a builder with the paper defaults: a 4×2×2 torus, the ACE
    /// configuration, 2 training iterations, and the paper's NPU and
    /// network parameters.
    pub fn new() -> SystemBuilder {
        SystemBuilder {
            l: 4,
            v: 2,
            h: 2,
            spec: None,
            config: SystemConfig::Ace,
            source: None,
            parallelism: None,
            iterations: 2,
            optimized_embedding: false,
            npu_params: None,
            net_params: None,
            sim_threads: 1,
            conditions: RunConditions::default(),
        }
    }

    /// Sets the `LxVxH` torus shape (Section V notation). Validation is
    /// deferred to [`build`](SystemBuilder::build).
    pub fn topology(mut self, l: usize, v: usize, h: usize) -> SystemBuilder {
        self.l = l;
        self.v = v;
        self.h = h;
        self.spec = None;
        self
    }

    /// Sets an arbitrary topology (any [`TopologySpec`]: an N-dimension
    /// torus, a switch, or a hierarchical fabric), overriding
    /// [`topology`](SystemBuilder::topology).
    pub fn topology_spec(mut self, spec: impl Into<TopologySpec>) -> SystemBuilder {
        self.spec = Some(spec.into());
        self
    }

    /// Sets the endpoint configuration (Table VI).
    pub fn config(mut self, config: SystemConfig) -> SystemBuilder {
        self.config = config;
        self
    }

    /// Sets the workload (replacing any earlier workload, spec, or
    /// program).
    pub fn workload(mut self, workload: Workload) -> SystemBuilder {
        self.source = Some(WorkSource::Workload(workload));
        self
    }

    /// Sets a declarative workload spec, instantiated for the built
    /// topology's node count (replacing any earlier workload, spec, or
    /// program).
    pub fn workload_spec(mut self, spec: WorkloadSpec) -> SystemBuilder {
        self.source = Some(WorkSource::Spec(spec));
        self
    }

    /// Sets an explicit task graph, bypassing lowering entirely
    /// (replacing any earlier workload, spec, or program). The program
    /// is [validated](Program::validate) at build time; the
    /// [`iterations`](SystemBuilder::iterations),
    /// [`parallelism`](SystemBuilder::parallelism) and
    /// [`optimized_embedding`](SystemBuilder::optimized_embedding)
    /// settings do not apply to it.
    pub fn program(mut self, program: Program) -> SystemBuilder {
        self.source = Some(WorkSource::Program(program));
        self
    }

    /// Overrides the parallelization strategy the workload is lowered
    /// under (e.g. Megatron-style [`Parallelism::Model`] for the
    /// Transformer-LM). Defaults to the workload's native strategy.
    pub fn parallelism(mut self, parallelism: Parallelism) -> SystemBuilder {
        self.parallelism = Some(parallelism);
        self
    }

    /// Overrides the NPU compute parameters (default:
    /// [`NpuParams::paper_default`]).
    pub fn npu_params(mut self, npu: NpuParams) -> SystemBuilder {
        self.npu_params = Some(npu);
        self
    }

    /// Overrides the network link parameters (default:
    /// [`NetworkParams::paper_default`]).
    pub fn net_params(mut self, net: NetworkParams) -> SystemBuilder {
        self.net_params = Some(net);
        self
    }

    /// Sets the number of worker threads the event loop of *this one
    /// simulation* is partitioned across (default 1 = serial). Results
    /// are byte-identical for every value; only wall-clock time changes.
    /// Distinct from a sweep's grid-level `--threads`, which runs whole
    /// simulations in parallel.
    pub fn sim_threads(mut self, threads: usize) -> SystemBuilder {
        self.sim_threads = threads.max(1);
        self
    }

    /// Sets the fault/contention/straggler [`RunConditions`] the
    /// simulation runs under (default: pristine). A spec that cannot be
    /// realized on the topology — e.g. a fault that disconnects the
    /// fabric — is a [`BuildError::InvalidConditions`], never a hang.
    pub fn conditions(mut self, conditions: RunConditions) -> SystemBuilder {
        self.conditions = conditions;
        self
    }

    /// Sets the number of simulated iterations (default 2, as in the
    /// paper).
    pub fn iterations(mut self, iterations: u32) -> SystemBuilder {
        self.iterations = iterations.max(1);
        self
    }

    /// Enables the DLRM optimized training loop (Fig. 12): embedding
    /// lookup/update of the next/previous iteration run in the background
    /// on a 1-SM / 80 GB/s carve-out — the
    /// [`Program::optimize_embedding`] graph transform.
    pub fn optimized_embedding(mut self, on: bool) -> SystemBuilder {
        self.optimized_embedding = on;
        self
    }

    /// Builds the simulator.
    ///
    /// # Errors
    ///
    /// [`BuildError::MissingWorkload`] if nothing runnable was set,
    /// [`BuildError::InvalidShape`] for degenerate torus shapes,
    /// [`BuildError::InvalidWorkload`] for inconsistent specs or
    /// parallelism overrides, and [`BuildError::InvalidProgram`] when a
    /// user program fails validation.
    pub fn build(self) -> Result<TrainingSim, BuildError> {
        self.build_traced(ace_trace::NullTracer)
    }

    /// [`build`](SystemBuilder::build) with an instrumentation sink: the
    /// returned simulator records dispatch/link/task events into `tracer`
    /// (recover it via
    /// [`run_with_tracer`](TrainingSim::run_with_tracer)). With the
    /// default [`NullTracer`](ace_trace::NullTracer) every probe
    /// monomorphizes to nothing.
    ///
    /// # Errors
    ///
    /// Same conditions as [`build`](SystemBuilder::build).
    pub fn build_traced<T: ace_trace::Tracer>(
        self,
        tracer: T,
    ) -> Result<TrainingSim<T>, BuildError> {
        let spec = match self.spec {
            Some(spec) => spec,
            None => TorusShape::new(self.l, self.v, self.h)
                .map_err(|e| BuildError::InvalidShape(e.to_string()))?
                .into(),
        };
        let npu = self.npu_params.unwrap_or_else(NpuParams::paper_default);
        let net = self.net_params.unwrap_or_else(NetworkParams::paper_default);
        let exec_options = crate::executor::ExecutorOptions {
            sim_threads: self.sim_threads,
            ..Default::default()
        };
        let workload = match self.source {
            None => return Err(BuildError::MissingWorkload),
            Some(WorkSource::Program(program)) => {
                program.validate().map_err(BuildError::InvalidProgram)?;
                return TrainingSim::from_program_with_conditions(
                    self.config,
                    program,
                    spec,
                    npu,
                    net,
                    exec_options,
                    &self.conditions,
                    tracer,
                )
                .map_err(|e| BuildError::InvalidConditions(e.to_string()));
            }
            Some(WorkSource::Workload(w)) => w,
            Some(WorkSource::Spec(s)) => {
                s.validate().map_err(BuildError::InvalidWorkload)?;
                s.instantiate(spec.nodes())
            }
        };
        let workload = match self.parallelism {
            Some(p) => workload
                .with_parallelism(p)
                .map_err(BuildError::InvalidWorkload)?,
            None => workload,
        };
        let opts = LoweringOptions {
            iterations: self.iterations,
            overlap: self.config.overlaps(),
        };
        let mut program = Program::lower(&workload, workload.parallelism(), &opts);
        // The embedding optimization only matters for workloads with an
        // embedding stage; for the rest the transform is a silent no-op
        // (matching the paper's usage) — so gate the resource carve-out
        // on an embedding being present.
        if self.optimized_embedding && workload.embedding().is_some() {
            program.optimize_embedding();
        }
        TrainingSim::from_program_with_conditions(
            self.config,
            program,
            spec,
            npu,
            net,
            exec_options,
            &self.conditions,
            tracer,
        )
        .map_err(|e| BuildError::InvalidConditions(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_workload_errors() {
        assert_eq!(
            SystemBuilder::new().build().unwrap_err(),
            BuildError::MissingWorkload
        );
    }

    #[test]
    fn invalid_shape_errors() {
        let err = SystemBuilder::new()
            .topology(0, 2, 2)
            .workload(Workload::resnet50())
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::InvalidShape(_)));
        assert!(err.to_string().contains("invalid torus shape"));
    }

    #[test]
    fn defaults_are_paper_defaults() {
        let sim = SystemBuilder::new()
            .workload(Workload::resnet50())
            .build()
            .unwrap();
        assert!(!sim.is_hybrid());
    }

    #[test]
    fn optimized_embedding_ignored_for_data_parallel() {
        // Should build and run without the carve-out even though the
        // flag is set: ResNet-50 has no embedding stage.
        let sim = SystemBuilder::new()
            .optimized_embedding(true)
            .workload(Workload::resnet50())
            .iterations(1)
            .build()
            .unwrap();
        assert!(!sim.is_hybrid());
        assert!(sim.program().carveout().is_none());
    }

    #[test]
    fn parallelism_override_is_applied_and_validated() {
        let sim = SystemBuilder::new()
            .workload(Workload::transformer_lm())
            .parallelism(Parallelism::Model)
            .build()
            .unwrap();
        assert_eq!(sim.program().parallelism(), Parallelism::Model);

        let err = SystemBuilder::new()
            .workload(Workload::resnet50())
            .parallelism(Parallelism::Hybrid)
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::InvalidWorkload(_)), "{err}");
        assert!(err.to_string().contains("embedding"));
    }

    #[test]
    fn npu_and_net_params_are_no_longer_baked_in() {
        // Halving the NPU's peak memory bandwidth must slow compute; the
        // old API hard-coded paper defaults inside the simulator.
        let run = |npu: NpuParams| {
            SystemBuilder::new()
                .topology(2, 2, 1)
                .workload(Workload::resnet50())
                .npu_params(npu)
                .iterations(1)
                .build()
                .unwrap()
                .run()
        };
        let paper = run(NpuParams::paper_default());
        let mut slow = NpuParams::paper_default();
        slow.peak_tflops /= 4.0;
        let slowed = run(slow);
        assert!(
            slowed.total_compute_us() >= paper.total_compute_us(),
            "weaker NPU cannot compute faster"
        );

        // Slower inter-package links stretch the network side.
        let mut net = NetworkParams::paper_default();
        net.inter.bandwidth_gbps /= 8.0;
        let throttled = SystemBuilder::new()
            .topology(2, 2, 1)
            .workload(Workload::resnet50())
            .net_params(net)
            .iterations(1)
            .build()
            .unwrap()
            .run();
        let baseline = SystemBuilder::new()
            .topology(2, 2, 1)
            .workload(Workload::resnet50())
            .iterations(1)
            .build()
            .unwrap()
            .run();
        assert!(throttled.total_time_us() >= baseline.total_time_us());
    }

    #[test]
    fn invalid_program_is_rejected() {
        use ace_collectives::CollectiveOp;
        use ace_workloads::TaskPhase;
        let mut p = Program::new("bad", Parallelism::Data, 1);
        let ar = p.add_collective(
            CollectiveOp::AllReduce,
            1 << 20,
            TaskPhase::Backward,
            0,
            vec![],
        );
        let ar2 = p.add_collective(
            CollectiveOp::AllReduce,
            1 << 20,
            TaskPhase::Backward,
            0,
            vec![ar],
        );
        let _ = ar2; // collective-on-collective dependency is invalid
        let err = SystemBuilder::new().program(p).build().unwrap_err();
        assert!(matches!(err, BuildError::InvalidProgram(_)), "{err}");
    }

    #[test]
    fn workload_spec_instantiates_at_build_time() {
        let spec = WorkloadSpec::from_toml_str(
            "name = \"tiny\"\nbatch_per_npu = 4\n[[layer]]\nfwd_flops = 1e9\nfwd_bytes = 1e7\n\
             comm = \"all-reduce\"\ncomm_bytes = \"1MB\"\n",
        )
        .unwrap();
        let report = SystemBuilder::new()
            .topology(2, 1, 1)
            .workload_spec(spec)
            .iterations(1)
            .build()
            .unwrap()
            .run();
        assert_eq!(report.workload(), "tiny");
        assert!(report.total_cycles() > 0);
    }
}
