//! The unified run entry point: one builder for single-collective runs
//! and one for training runs, with fault/contention/straggler conditions
//! as first-class inputs.
//!
//! Earlier revisions grew a parallel surface per knob —
//! `run_single_collective` / `_with_options` / `_traced`, plus matching
//! `TrainingSim` constructor variants. [`RunSpec`] and [`TrainSpec`]
//! collapse those into builder chains:
//!
//! ```
//! use ace_system::{EngineKind, RunSpec};
//! use ace_collectives::CollectiveOp;
//! use ace_net::TopologySpec;
//!
//! let topo: TopologySpec = "4x4".parse().unwrap();
//! let pristine = RunSpec::new(topo, EngineKind::Ideal, CollectiveOp::AllReduce, 1 << 20)
//!     .run()
//!     .unwrap();
//! let degraded = RunSpec::new(topo, EngineKind::Ideal, CollectiveOp::AllReduce, 1 << 20)
//!     .faults("kill:1@seed:7".parse().unwrap())
//!     .run()
//!     .unwrap();
//! assert!(degraded.completion >= pristine.completion);
//! ```
//!
//! Degradation is resolved once into a [`FaultPlan`] before any event
//! runs, so disconnected partitions and saturating contention surface as
//! a [`RunError`] instead of a hang or a silently wrong result.

use std::fmt;

use ace_collectives::CollectiveOp;
use ace_compute::NpuParams;
use ace_net::{ContentionSpec, FaultError, FaultPlan, FaultSpec, NetworkParams, TopologySpec};
use ace_trace::{NullTracer, RecordingTracer, Tracer};
use ace_workloads::{Program, StragglerSpec};

use crate::collective_run::{run_with_conditions, CollectiveRunReport, EngineKind};
use crate::config::SystemConfig;
use crate::executor::ExecutorOptions;
use crate::report::IterationReport;
use crate::training::TrainingSim;

/// The environmental conditions a run executes under: fabric faults,
/// background contention, and compute stragglers. The default is the
/// pristine fabric every earlier revision assumed.
///
/// All three axes are deterministic given their spellings (random draws
/// are splitmix64-seeded), so conditions are part of a run's identity —
/// the sweep layer hashes them into cache keys.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct RunConditions {
    /// Killed/degraded links and nodes (`none`, `kill:2@seed:7`,
    /// `degrade:50:link:0-1`, ... — see [`FaultSpec`]).
    pub faults: FaultSpec,
    /// Background traffic (`none`, `uniform:GBPS`, `hotspot:NODE@GBPS`).
    pub contention: ContentionSpec,
    /// Compute-task stretch distribution (`det`,
    /// `lognormal:SIGMA[@seed:S]`). Only affects Program IR compute
    /// tasks; standalone collectives have none.
    pub straggler: StragglerSpec,
}

impl RunConditions {
    /// Conditions that change nothing (the pristine fabric).
    pub fn is_pristine(&self) -> bool {
        self.faults.is_none()
            && matches!(self.contention, ContentionSpec::None)
            && self.straggler.is_det()
    }

    /// Resolves the fault/contention axes against a topology into a
    /// [`FaultPlan`] (routes re-planned around kills, per-dimension
    /// slowdowns, connectivity verified).
    ///
    /// # Errors
    ///
    /// Any [`FaultError`]: a disconnected partition, saturating
    /// contention, or a named link/node that does not exist.
    pub fn resolve(
        &self,
        spec: TopologySpec,
        net: &NetworkParams,
    ) -> Result<FaultPlan, FaultError> {
        let topo = spec.build();
        FaultPlan::resolve(topo.as_ref(), net, &self.faults, &self.contention)
    }
}

impl fmt::Display for RunConditions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "faults={} contention={} straggler={}",
            self.faults, self.contention, self.straggler
        )
    }
}

/// Why a run could not start.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The fault/contention conditions cannot run on this topology.
    Fault(FaultError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Fault(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<FaultError> for RunError {
    fn from(e: FaultError) -> RunError {
        RunError::Fault(e)
    }
}

/// Builder for a standalone single-collective run (the Fig. 5/6/9a
/// harness). See the module-level docs for an example.
#[derive(Debug)]
pub struct RunSpec<T: Tracer = NullTracer> {
    topology: TopologySpec,
    engine: EngineKind,
    op: CollectiveOp,
    payload_bytes: u64,
    options: ExecutorOptions,
    conditions: RunConditions,
    tracer: T,
}

impl RunSpec {
    /// A run of `op` with per-node `payload_bytes` on `topology` using
    /// `engine`, under default options on a pristine fabric.
    pub fn new(
        topology: impl Into<TopologySpec>,
        engine: EngineKind,
        op: CollectiveOp,
        payload_bytes: u64,
    ) -> RunSpec {
        RunSpec {
            topology: topology.into(),
            engine,
            op,
            payload_bytes,
            options: ExecutorOptions::default(),
            conditions: RunConditions::default(),
            tracer: NullTracer,
        }
    }

    /// Attaches a [`RecordingTracer`]; retrieve it from
    /// [`run_traced`](RunSpec::run_traced).
    pub fn traced(self) -> RunSpec<RecordingTracer> {
        self.tracer(RecordingTracer::new())
    }
}

impl<T: Tracer> RunSpec<T> {
    /// Sets non-default [`ExecutorOptions`] (`sim_threads`, ablation
    /// knobs).
    pub fn options(mut self, options: ExecutorOptions) -> RunSpec<T> {
        self.options = options;
        self
    }

    /// Sets the full run conditions at once.
    pub fn conditions(mut self, conditions: RunConditions) -> RunSpec<T> {
        self.conditions = conditions;
        self
    }

    /// Sets the fault axis.
    pub fn faults(mut self, faults: FaultSpec) -> RunSpec<T> {
        self.conditions.faults = faults;
        self
    }

    /// Sets the background-contention axis.
    pub fn contention(mut self, contention: ContentionSpec) -> RunSpec<T> {
        self.conditions.contention = contention;
        self
    }

    /// Attaches an arbitrary [`Tracer`] (changes the builder's type).
    pub fn tracer<U: Tracer>(self, tracer: U) -> RunSpec<U> {
        RunSpec {
            topology: self.topology,
            engine: self.engine,
            op: self.op,
            payload_bytes: self.payload_bytes,
            options: self.options,
            conditions: self.conditions,
            tracer,
        }
    }

    /// Runs the collective and returns the report.
    ///
    /// # Errors
    ///
    /// [`RunError::Fault`] when the conditions cannot run on this
    /// topology (disconnection, saturation, unknown link/node).
    pub fn run(self) -> Result<CollectiveRunReport, RunError> {
        self.run_traced().map(|(report, _)| report)
    }

    /// Runs the collective and returns the report plus the tracer.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run`](RunSpec::run).
    pub fn run_traced(self) -> Result<(CollectiveRunReport, T), RunError> {
        let net_params = NetworkParams::paper_default();
        let plan = (!self.conditions.is_pristine())
            .then(|| self.conditions.resolve(self.topology, &net_params))
            .transpose()?;
        Ok(run_with_conditions(
            self.topology,
            self.engine,
            self.op,
            self.payload_bytes,
            self.options,
            plan.as_ref(),
            self.tracer,
        ))
    }
}

/// Builder for a training run: the unified construction surface for
/// [`TrainingSim`].
///
/// ```
/// use ace_system::{SystemConfig, TrainSpec};
/// use ace_workloads::{LoweringOptions, Program, Workload};
///
/// let w = Workload::resnet50();
/// let opts = LoweringOptions { iterations: 1, overlap: true };
/// let program = Program::lower(&w, w.parallelism(), &opts);
/// let topo: ace_net::TopologySpec = "2x2".parse().unwrap();
/// let report = TrainSpec::new(SystemConfig::Ace, program, topo)
///     .run()
///     .unwrap();
/// assert!(report.total_cycles() > 0);
/// ```
#[derive(Debug)]
pub struct TrainSpec<T: Tracer = NullTracer> {
    config: SystemConfig,
    program: Program,
    topology: TopologySpec,
    npu: NpuParams,
    net_params: NetworkParams,
    options: ExecutorOptions,
    conditions: RunConditions,
    tracer: T,
}

impl TrainSpec {
    /// A run of `program` on `topology` under `config`, with the paper's
    /// NPU/network parameters, default options, a pristine fabric, and
    /// no tracer.
    pub fn new(
        config: SystemConfig,
        program: Program,
        topology: impl Into<TopologySpec>,
    ) -> TrainSpec {
        TrainSpec {
            config,
            program,
            topology: topology.into(),
            npu: NpuParams::paper_default(),
            net_params: NetworkParams::paper_default(),
            options: ExecutorOptions::default(),
            conditions: RunConditions::default(),
            tracer: NullTracer,
        }
    }
}

impl<T: Tracer> TrainSpec<T> {
    /// Overrides the NPU compute parameters.
    pub fn npu_params(mut self, npu: NpuParams) -> TrainSpec<T> {
        self.npu = npu;
        self
    }

    /// Overrides the network link parameters.
    pub fn net_params(mut self, net: NetworkParams) -> TrainSpec<T> {
        self.net_params = net;
        self
    }

    /// Sets non-default [`ExecutorOptions`].
    pub fn options(mut self, options: ExecutorOptions) -> TrainSpec<T> {
        self.options = options;
        self
    }

    /// Sets the full run conditions at once.
    pub fn conditions(mut self, conditions: RunConditions) -> TrainSpec<T> {
        self.conditions = conditions;
        self
    }

    /// Sets the fault axis.
    pub fn faults(mut self, faults: FaultSpec) -> TrainSpec<T> {
        self.conditions.faults = faults;
        self
    }

    /// Attaches an arbitrary [`Tracer`] (changes the builder's type).
    pub fn tracer<U: Tracer>(self, tracer: U) -> TrainSpec<U> {
        TrainSpec {
            config: self.config,
            program: self.program,
            topology: self.topology,
            npu: self.npu,
            net_params: self.net_params,
            options: self.options,
            conditions: self.conditions,
            tracer,
        }
    }

    /// Builds the simulator (conditions resolved, stragglers applied).
    ///
    /// # Errors
    ///
    /// [`RunError::Fault`] when the conditions cannot run on this
    /// topology.
    pub fn build(self) -> Result<TrainingSim<T>, RunError> {
        TrainingSim::from_program_with_conditions(
            self.config,
            self.program,
            self.topology,
            self.npu,
            self.net_params,
            self.options,
            &self.conditions,
            self.tracer,
        )
    }

    /// Builds and runs, returning the report.
    ///
    /// # Errors
    ///
    /// Same conditions as [`build`](TrainSpec::build).
    pub fn run(self) -> Result<IterationReport, RunError> {
        Ok(self.build()?.run())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_workloads::{LoweringOptions, Workload};

    const MB8: u64 = 8 << 20;

    fn topo(s: &str) -> TopologySpec {
        s.parse().unwrap()
    }

    #[test]
    fn faulted_runs_complete_and_are_slower() {
        let base = RunSpec::new(topo("4x4"), EngineKind::Ideal, CollectiveOp::AllReduce, MB8)
            .run()
            .unwrap();
        let degraded = RunSpec::new(topo("4x4"), EngineKind::Ideal, CollectiveOp::AllReduce, MB8)
            .faults("kill:2@seed:42".parse().unwrap())
            .run()
            .unwrap();
        assert!(
            degraded.completion > base.completion,
            "two killed links must slow the all-reduce: {} !> {}",
            degraded.completion.cycles(),
            base.completion.cycles()
        );
        // Byte conservation: the collective still moves every payload
        // byte (detours add traffic, so the degraded fabric carries at
        // least as much).
        assert!(degraded.network_bytes >= base.network_bytes);
    }

    #[test]
    fn contention_slows_the_exact_run() {
        let base = RunSpec::new(topo("4x4"), EngineKind::Ideal, CollectiveOp::AllReduce, MB8)
            .run()
            .unwrap();
        let congested = RunSpec::new(topo("4x4"), EngineKind::Ideal, CollectiveOp::AllReduce, MB8)
            .contention("uniform:20".parse().unwrap())
            .run()
            .unwrap();
        assert!(congested.completion > base.completion);
        assert_eq!(congested.network_bytes, base.network_bytes);
    }

    #[test]
    fn disconnection_is_an_error_not_a_hang() {
        // Killing a node disconnects it; with sim_threads > 1 the old
        // domain-partitioned path would deadlock waiting on its events.
        let err = RunSpec::new(topo("4x4"), EngineKind::Ideal, CollectiveOp::AllReduce, MB8)
            .options(ExecutorOptions {
                sim_threads: 4,
                ..Default::default()
            })
            .faults("kill:node:5".parse().unwrap())
            .run()
            .unwrap_err();
        assert!(
            matches!(&err, RunError::Fault(FaultError::Disconnected { .. })),
            "{err}"
        );
        assert!(err.to_string().contains("disconnect"), "{err}");
    }

    #[test]
    fn faulted_fabrics_fall_back_to_serial_and_match() {
        // A connected faulted fabric under sim_threads > 1 must run (on
        // the serial loop) and produce the identical result.
        let faults: FaultSpec = "kill:1@seed:3".parse().unwrap();
        let serial = RunSpec::new(topo("4x4"), EngineKind::Ideal, CollectiveOp::AllReduce, MB8)
            .faults(faults.clone())
            .run()
            .unwrap();
        let threaded = RunSpec::new(topo("4x4"), EngineKind::Ideal, CollectiveOp::AllReduce, MB8)
            .options(ExecutorOptions {
                sim_threads: 4,
                ..Default::default()
            })
            .faults(faults)
            .run()
            .unwrap();
        assert_eq!(serial.completion, threaded.completion);
        assert_eq!(serial.network_bytes, threaded.network_bytes);
        assert_eq!(serial.mem_traffic_bytes, threaded.mem_traffic_bytes);
    }

    #[test]
    fn degraded_all_to_all_reroutes_around_kills() {
        let base = RunSpec::new(topo("4x4"), EngineKind::Ideal, CollectiveOp::AllToAll, MB8)
            .run()
            .unwrap();
        let degraded = RunSpec::new(topo("4x4"), EngineKind::Ideal, CollectiveOp::AllToAll, MB8)
            .faults("kill:2@seed:42".parse().unwrap())
            .run()
            .unwrap();
        assert!(degraded.completion >= base.completion);
        assert!(degraded.network_bytes >= base.network_bytes);
    }

    #[test]
    fn training_with_conditions_runs_and_stretches() {
        let w = Workload::resnet50();
        let opts = LoweringOptions {
            iterations: 1,
            overlap: true,
        };
        let program = Program::lower(&w, w.parallelism(), &opts);
        let base = TrainSpec::new(SystemConfig::Ace, program.clone(), topo("2x2"))
            .run()
            .unwrap();
        let degraded = TrainSpec::new(SystemConfig::Ace, program.clone(), topo("2x2"))
            .conditions(RunConditions {
                faults: "degrade:50:1@seed:9".parse().unwrap(),
                contention: ContentionSpec::None,
                straggler: "lognormal:0.3@seed:4".parse().unwrap(),
            })
            .run()
            .unwrap();
        assert!(degraded.total_cycles() >= base.total_cycles());
        // Stragglers stretch compute deterministically.
        let again = TrainSpec::new(SystemConfig::Ace, program, topo("2x2"))
            .conditions(RunConditions {
                faults: "degrade:50:1@seed:9".parse().unwrap(),
                contention: ContentionSpec::None,
                straggler: "lognormal:0.3@seed:4".parse().unwrap(),
            })
            .run()
            .unwrap();
        assert_eq!(degraded.total_cycles(), again.total_cycles());
    }

    #[test]
    fn conditions_display_and_identity() {
        let c = RunConditions::default();
        assert!(c.is_pristine());
        assert_eq!(c.to_string(), "faults=none contention=none straggler=det");
        let d = RunConditions {
            faults: "kill:1@seed:2".parse().unwrap(),
            contention: "hotspot:3@10".parse().unwrap(),
            straggler: "lognormal:0.5".parse().unwrap(),
        };
        assert!(!d.is_pristine());
        let e = RunConditions {
            faults: "kill:1@seed:2".parse().unwrap(),
            contention: "hotspot:3@10".parse().unwrap(),
            straggler: "lognormal:0.5".parse().unwrap(),
        };
        assert_eq!(d, e);
    }
}
