//! The programmable FSM pool (Section IV-F).
//!
//! Each FSM is programmed for one phase of one collective algorithm and
//! holds a queue of chunks processed in order; FSMs assigned to the same
//! phase give that phase intra-phase chunk parallelism. The pool spreads
//! the configured FSM count across phases round-robin, guaranteeing every
//! phase at least one FSM (matching the paper's observation that available
//! parallelism "is only bounded by the number of available state machines
//! ... for each phase").

use ace_simcore::{Grant, SimTime, SlotServer};

/// A pool of FSMs statically assigned to collective phases.
#[derive(Debug, Clone)]
pub struct FsmPool {
    groups: Vec<SlotServer>,
}

impl FsmPool {
    /// Distributes `num_fsms` FSMs over `phases` phases. When there are
    /// fewer FSMs than phases, phases share FSM groups round-robin (an FSM
    /// is then programmed to handle multiple phases, as the paper does for
    /// all-to-all sharing all-reduce FSMs).
    ///
    /// # Panics
    ///
    /// Panics if `num_fsms` or `phases` is zero.
    pub fn new(num_fsms: usize, phases: usize) -> FsmPool {
        assert!(num_fsms > 0, "need at least one FSM");
        assert!(phases > 0, "need at least one phase");
        let mut counts = vec![num_fsms / phases; phases];
        for item in counts.iter_mut().take(num_fsms % phases) {
            *item += 1;
        }
        // Guarantee progress on every phase even with very few FSMs.
        for c in counts.iter_mut() {
            *c = (*c).max(1);
        }
        let groups = counts.into_iter().map(SlotServer::new).collect();
        FsmPool { groups }
    }

    /// Number of phase groups.
    pub fn phases(&self) -> usize {
        self.groups.len()
    }

    /// Number of FSMs serving `phase`.
    pub fn fsms_for(&self, phase: usize) -> usize {
        self.groups[phase].slots()
    }

    /// Dispatches one chunk-step of `duration` cycles onto the earliest
    /// free FSM of `phase`.
    ///
    /// # Panics
    ///
    /// Panics if `phase` is out of range.
    pub fn dispatch(&mut self, phase: usize, now: SimTime, duration: u64) -> Grant {
        self.groups[phase].request(now, duration)
    }

    /// Earliest time a step for `phase` could begin at `now`.
    pub fn next_free(&self, phase: usize, now: SimTime) -> SimTime {
        self.groups[phase].next_free(now)
    }

    /// Aggregate FSM-busy cycles (for utilization reporting).
    pub fn busy_cycles(&self) -> u64 {
        self.groups.iter().map(SlotServer::busy_cycles).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_fsms_over_four_phases() {
        let pool = FsmPool::new(16, 4);
        assert_eq!(pool.phases(), 4);
        for phase in 0..4 {
            assert_eq!(pool.fsms_for(phase), 4);
        }
    }

    #[test]
    fn uneven_split_favors_early_phases() {
        let pool = FsmPool::new(10, 4);
        assert_eq!(pool.fsms_for(0), 3);
        assert_eq!(pool.fsms_for(1), 3);
        assert_eq!(pool.fsms_for(2), 2);
        assert_eq!(pool.fsms_for(3), 2);
    }

    #[test]
    fn fewer_fsms_than_phases_still_progresses() {
        let pool = FsmPool::new(2, 4);
        for phase in 0..4 {
            assert!(pool.fsms_for(phase) >= 1);
        }
    }

    #[test]
    fn dispatch_parallelism_matches_group_size() {
        let mut pool = FsmPool::new(8, 4); // 2 FSMs per phase
        let a = pool.dispatch(0, SimTime::ZERO, 100);
        let b = pool.dispatch(0, SimTime::ZERO, 100);
        let c = pool.dispatch(0, SimTime::ZERO, 100);
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(b.start, SimTime::ZERO);
        assert_eq!(c.start.cycles(), 100);
        // Phase 1's FSMs are independent.
        let d = pool.dispatch(1, SimTime::ZERO, 100);
        assert_eq!(d.start, SimTime::ZERO);
    }

    #[test]
    fn next_free_reflects_load() {
        let mut pool = FsmPool::new(4, 4); // 1 FSM per phase
        pool.dispatch(2, SimTime::ZERO, 50);
        assert_eq!(pool.next_free(2, SimTime::ZERO).cycles(), 50);
        assert_eq!(pool.next_free(3, SimTime::ZERO), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one FSM")]
    fn zero_fsms_rejected() {
        let _ = FsmPool::new(0, 4);
    }
}
