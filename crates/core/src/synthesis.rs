//! Area/power synthesis model (paper Table IV, 28 nm).
//!
//! The paper implements ACE in Verilog and synthesizes it with Synopsys
//! Design Compiler at 28 nm. We reproduce Table IV as an analytical model:
//! the default configuration returns the paper's exact component figures,
//! and other design-space points scale linearly in the relevant capacity
//! (SRAM area/power per MB, control area/power per FSM, ALU per unit).
//! The small gap between Table IV's component rows and its "ACE (Total)"
//! row is carried as a fixed integration overhead.

use crate::config::AceConfig;

/// Area (µm²) and power (mW) of one component or of the whole engine.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaPower {
    /// Area in square micrometres.
    pub area_um2: f64,
    /// Power in milliwatts.
    pub power_mw: f64,
}

impl AreaPower {
    /// Component-wise sum.
    pub fn plus(self, other: AreaPower) -> AreaPower {
        AreaPower {
            area_um2: self.area_um2 + other.area_um2,
            power_mw: self.power_mw + other.power_mw,
        }
    }

    /// Area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.area_um2 / 1e6
    }

    /// Power in watts.
    pub fn power_w(&self) -> f64 {
        self.power_mw / 1e3
    }
}

/// Table IV reference point: 4 ALU units.
const ALU_REF: AreaPower = AreaPower {
    area_um2: 16112.0,
    power_mw: 7.552,
};
const ALU_REF_UNITS: f64 = 4.0;

/// Table IV reference point: control unit with 16 FSMs.
const CONTROL_REF: AreaPower = AreaPower {
    area_um2: 159803.0,
    power_mw: 128.0,
};
const CONTROL_REF_FSMS: f64 = 16.0;

/// Table IV reference point: 4 × 1 MB SRAM banks.
const SRAM_REF: AreaPower = AreaPower {
    area_um2: 5_113_696.0,
    power_mw: 4096.0,
};
const SRAM_REF_MB: f64 = 4.0;

/// Table IV: switch & interconnect.
const SWITCH_REF: AreaPower = AreaPower {
    area_um2: 1084.0,
    power_mw: 0.329,
};

/// Residual between Table IV's total row and the sum of its components
/// (integration/glue logic).
const INTEGRATION: AreaPower = AreaPower {
    area_um2: 5_339_031.0 - (16112.0 + 159803.0 + 5_113_696.0 + 1084.0),
    power_mw: 4255.0 - (7.552 + 128.0 + 4096.0 + 0.329),
};

/// ALU array estimate for `config`.
pub fn alu(config: &AceConfig) -> AreaPower {
    let scale = config.alu_units as f64 / ALU_REF_UNITS;
    AreaPower {
        area_um2: ALU_REF.area_um2 * scale,
        power_mw: ALU_REF.power_mw * scale,
    }
}

/// Control-unit estimate for `config` (scales with FSM count).
pub fn control(config: &AceConfig) -> AreaPower {
    let scale = config.num_fsms as f64 / CONTROL_REF_FSMS;
    AreaPower {
        area_um2: CONTROL_REF.area_um2 * scale,
        power_mw: CONTROL_REF.power_mw * scale,
    }
}

/// SRAM estimate for `config` (scales with capacity).
pub fn sram(config: &AceConfig) -> AreaPower {
    let mb = config.sram_bytes as f64 / (1024.0 * 1024.0);
    let scale = mb / SRAM_REF_MB;
    AreaPower {
        area_um2: SRAM_REF.area_um2 * scale,
        power_mw: SRAM_REF.power_mw * scale,
    }
}

/// Switch & interconnect estimate (constant).
pub fn switch(_config: &AceConfig) -> AreaPower {
    SWITCH_REF
}

/// Whole-engine estimate: components plus integration overhead.
pub fn total(config: &AceConfig) -> AreaPower {
    alu(config)
        .plus(control(config))
        .plus(sram(config))
        .plus(switch(config))
        .plus(INTEGRATION)
}

/// Reference high-end training accelerator for the "<2 % overhead" claim
/// (Section IV-I cites TPU-class parts \[25\], \[57\]): ~331 mm², ~250 W.
#[derive(Debug, Clone, Copy)]
pub struct AcceleratorReference {
    /// Die area in mm².
    pub area_mm2: f64,
    /// TDP in watts.
    pub power_w: f64,
}

impl AcceleratorReference {
    /// TPU-class reference point.
    pub fn tpu_class() -> AcceleratorReference {
        AcceleratorReference {
            area_mm2: 331.0,
            power_w: 250.0,
        }
    }
}

/// ACE's area and power as fractions of the reference accelerator.
pub fn overhead(config: &AceConfig, reference: AcceleratorReference) -> (f64, f64) {
    let t = total(config);
    (
        t.area_mm2() / reference.area_mm2,
        t.power_w() / reference.power_w,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_component_rows() {
        let c = AceConfig::paper_default();
        assert_eq!(alu(&c).area_um2, 16112.0);
        assert!((alu(&c).power_mw - 7.552).abs() < 1e-9);
        assert_eq!(control(&c).area_um2, 159803.0);
        assert_eq!(control(&c).power_mw, 128.0);
        assert_eq!(sram(&c).area_um2, 5_113_696.0);
        assert_eq!(sram(&c).power_mw, 4096.0);
        assert_eq!(switch(&c).area_um2, 1084.0);
    }

    #[test]
    fn table_iv_total_row() {
        let t = total(&AceConfig::paper_default());
        assert!((t.area_um2 - 5_339_031.0).abs() < 1.0);
        assert!((t.power_mw - 4255.0).abs() < 0.5);
    }

    #[test]
    fn overhead_is_under_two_percent() {
        let (a, p) = overhead(
            &AceConfig::paper_default(),
            AcceleratorReference::tpu_class(),
        );
        assert!(a < 0.02, "area overhead {a}");
        assert!(p < 0.02, "power overhead {p}");
    }

    #[test]
    fn sram_dominates_and_scales() {
        let small = AceConfig::with_dse_point(1, 16);
        let big = AceConfig::with_dse_point(8, 16);
        assert!(sram(&big).area_um2 > 7.9 * sram(&small).area_um2);
        // SRAM is > 90% of total area at the default point.
        let c = AceConfig::paper_default();
        assert!(sram(&c).area_um2 / total(&c).area_um2 > 0.9);
    }

    #[test]
    fn control_scales_with_fsms() {
        let a = control(&AceConfig::with_dse_point(4, 8));
        let b = control(&AceConfig::with_dse_point(4, 16));
        assert!((b.area_um2 / a.area_um2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unit_conversions() {
        let ap = AreaPower {
            area_um2: 2.5e6,
            power_mw: 1500.0,
        };
        assert!((ap.area_mm2() - 2.5).abs() < 1e-12);
        assert!((ap.power_w() - 1.5).abs() < 1e-12);
    }
}
