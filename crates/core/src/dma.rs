//! TX/RX DMA engines (paper Fig. 7, components #2 and #4).
//!
//! The TX DMA pulls payload chunks from main memory into the ACE SRAM at
//! the start of a collective; the RX DMA pushes finished results back.
//! Each engine is a FIFO resource clocked at the NPU-AFI bus width; the
//! actual memory-partition and bus contention is charged by the endpoint
//! layer, so the engine itself only models its own occupancy.

use ace_simcore::{BandwidthServer, Frequency, Grant, SimTime};

/// One DMA engine (TX or RX).
#[derive(Debug, Clone)]
pub struct DmaEngine {
    server: BandwidthServer,
}

impl DmaEngine {
    /// Creates a DMA engine able to stream `gbps` at clock `freq`.
    pub fn new(gbps: f64, freq: Frequency) -> DmaEngine {
        DmaEngine {
            server: BandwidthServer::new(freq.bytes_per_cycle(gbps)),
        }
    }

    /// A DMA engine matched to the paper's 500 GB/s NPU-AFI bus.
    pub fn paper_default() -> DmaEngine {
        DmaEngine::new(500.0, ace_simcore::npu_frequency())
    }

    /// Streams `bytes` through the engine starting no earlier than `now`.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> Grant {
        self.server.request(now, bytes)
    }

    /// Earliest time the engine frees up for a request at `now`.
    pub fn next_free(&self, now: SimTime) -> SimTime {
        self.server.next_free(now)
    }

    /// Total bytes streamed.
    pub fn bytes_transferred(&self) -> u64 {
        self.server.bytes_served()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_serialize_at_bus_rate() {
        let mut dma = DmaEngine::paper_default();
        let a = dma.transfer(SimTime::ZERO, 64 * 1024);
        let b = dma.transfer(SimTime::ZERO, 64 * 1024);
        assert!(b.start >= a.start && b.end > a.end);
        assert_eq!(dma.bytes_transferred(), 128 * 1024);
    }

    #[test]
    fn rate_matches_bus() {
        let freq = ace_simcore::npu_frequency();
        let mut dma = DmaEngine::paper_default();
        let g = dma.transfer(SimTime::ZERO, 1 << 20);
        let expect = freq.transfer_cycles(1 << 20, 500.0);
        assert!((g.end.cycles() as i64 - expect as i64).abs() <= 1);
    }

    #[test]
    fn next_free_tracks_backlog() {
        let mut dma = DmaEngine::paper_default();
        let g = dma.transfer(SimTime::ZERO, 1 << 20);
        assert_eq!(dma.next_free(SimTime::ZERO), g.end);
    }
}
