//! SRAM partition management (Section IV-E, IV-I).
//!
//! For a collective with `P` phases the SRAM is divided into `P + 1`
//! partitions: one per phase plus the *terminal partition* holding results
//! awaiting the RX DMA. Partition sizes follow the paper's heuristic —
//! proportional to (phase network bandwidth × phase chunk size) — with the
//! terminal partition sized equal to the last phase's partition.

/// Allocates and tracks the per-phase SRAM partitions of one ACE.
#[derive(Debug, Clone)]
pub struct SramPartitioner {
    capacities: Vec<u64>,
    used: Vec<u64>,
}

impl SramPartitioner {
    /// Splits `total_bytes` across `weights.len() + 1` partitions using the
    /// paper's heuristic. `weights[i]` is (bandwidth × chunk size) for
    /// phase `i`; the terminal partition duplicates the last weight.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, any weight is non-positive, or
    /// `total_bytes` is zero.
    pub fn new(total_bytes: u64, weights: &[f64]) -> SramPartitioner {
        assert!(!weights.is_empty(), "need at least one phase weight");
        assert!(total_bytes > 0, "SRAM must be nonzero");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "phase weights must be positive"
        );
        let terminal = *weights.last().expect("nonempty");
        let sum: f64 = weights.iter().sum::<f64>() + terminal;
        let mut capacities: Vec<u64> = weights
            .iter()
            .chain(std::iter::once(&terminal))
            .map(|w| ((w / sum) * total_bytes as f64).floor() as u64)
            .collect();
        // Give rounding residue to the first partition (it sees the full
        // chunk size).
        let assigned: u64 = capacities.iter().sum();
        capacities[0] += total_bytes - assigned;
        let used = vec![0; capacities.len()];
        SramPartitioner { capacities, used }
    }

    /// Number of partitions (phases + terminal).
    pub fn partitions(&self) -> usize {
        self.capacities.len()
    }

    /// Capacity of partition `phase` in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `phase` is out of range.
    pub fn capacity(&self, phase: usize) -> u64 {
        self.capacities[phase]
    }

    /// Bytes currently allocated in partition `phase`.
    pub fn used(&self, phase: usize) -> u64 {
        self.used[phase]
    }

    /// Free bytes in partition `phase`.
    pub fn free_bytes(&self, phase: usize) -> u64 {
        self.capacities[phase] - self.used[phase]
    }

    /// Index of the terminal partition.
    pub fn terminal(&self) -> usize {
        self.capacities.len() - 1
    }

    /// Attempts to reserve `bytes` in partition `phase`. Chunks larger
    /// than the whole partition are admitted alone (occupying the full
    /// partition) so that oversized chunks cannot deadlock the engine.
    pub fn try_alloc(&mut self, phase: usize, bytes: u64) -> bool {
        let cap = self.capacities[phase];
        if bytes >= cap {
            // Oversized: admit only into an empty partition.
            if self.used[phase] == 0 {
                self.used[phase] = cap;
                return true;
            }
            return false;
        }
        if self.used[phase] + bytes <= cap {
            self.used[phase] += bytes;
            true
        } else {
            false
        }
    }

    /// Releases `bytes` from partition `phase`.
    ///
    /// # Panics
    ///
    /// Panics if the release would underflow the partition's accounting.
    pub fn free(&mut self, phase: usize, bytes: u64) {
        let cap = self.capacities[phase];
        let charged = if bytes >= cap { cap } else { bytes };
        assert!(
            self.used[phase] >= charged,
            "partition {phase} underflow: used {} < freed {charged}",
            self.used[phase]
        );
        self.used[phase] -= charged;
    }

    /// Total bytes in use across all partitions.
    pub fn total_used(&self) -> u64 {
        self.used.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_follow_weights_with_terminal() {
        // Paper example (Section IV-I footnote): a phase with 2x bandwidth
        // and 2x chunk size gets a 4x larger partition.
        let p = SramPartitioner::new(6000, &[4.0, 1.0]);
        assert_eq!(p.partitions(), 3);
        // Weights 4,1 + terminal 1 => shares 4/6, 1/6, 1/6.
        assert!(p.capacity(0) >= 3999 && p.capacity(0) <= 4001);
        assert_eq!(p.capacity(1), 1000);
        assert_eq!(p.capacity(2), 1000);
        assert_eq!(p.terminal(), 2);
    }

    #[test]
    fn capacities_sum_to_total() {
        let p = SramPartitioner::new(4 << 20, &[0.75, 0.09375, 0.09375, 0.1875]);
        let sum: u64 = (0..p.partitions()).map(|i| p.capacity(i)).sum();
        assert_eq!(sum, 4 << 20);
    }

    #[test]
    fn alloc_free_accounting() {
        let mut p = SramPartitioner::new(1000, &[1.0]);
        assert!(p.try_alloc(0, 300));
        assert_eq!(p.used(0), 300);
        assert!(p.free_bytes(0) < p.capacity(0));
        p.free(0, 300);
        assert_eq!(p.total_used(), 0);
    }

    #[test]
    fn alloc_fails_when_full() {
        let mut p = SramPartitioner::new(1000, &[1.0]);
        let cap = p.capacity(0);
        assert!(p.try_alloc(0, cap - 1));
        assert!(!p.try_alloc(0, 2));
        assert!(p.try_alloc(0, 1));
    }

    #[test]
    fn oversized_chunk_admitted_alone() {
        let mut p = SramPartitioner::new(1000, &[1.0, 1.0]);
        let cap = p.capacity(0);
        assert!(p.try_alloc(0, cap * 2), "oversized chunk must not deadlock");
        assert!(!p.try_alloc(0, 1), "partition is saturated");
        p.free(0, cap * 2);
        assert_eq!(p.used(0), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn double_free_panics() {
        let mut p = SramPartitioner::new(1000, &[1.0]);
        p.try_alloc(0, 100);
        p.free(0, 100);
        p.free(0, 100);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let _ = SramPartitioner::new(1000, &[1.0, 0.0]);
    }
}
