//! The ACE (Accelerator Collectives Engine) microarchitecture model —
//! the paper's primary contribution (Section IV).
//!
//! ACE sits beside the Accelerator Fabric Interface (AFI) at every NPU
//! endpoint and executes collective communication so the NPU's SMs and
//! memory bandwidth stay dedicated to training compute. Its components
//! (paper Fig. 7):
//!
//! * an on-chip **SRAM** (default 4 MB) split into one partition per
//!   collective phase plus a *terminal partition* holding results for the
//!   RX DMA ([`SramPartitioner`]),
//! * a pool of **programmable FSMs** (default 16) that each own the
//!   dataflow of one chunk at a time ([`FsmPool`]),
//! * **ALUs** — 4 units, each 16×FP32 / 32×FP16 per cycle — for reduction
//!   sums ([`AluModel`]),
//! * **TX/RX DMA engines** moving chunks between main memory and the SRAM
//!   ([`DmaEngine`]),
//! * a 28 nm **synthesis model** reproducing Table IV's area and power
//!   ([`synthesis`]).
//!
//! [`AceState`] bundles the dynamic resources into the form consumed by
//! the endpoint/system simulator, and tracks the engine-busy intervals
//! behind Fig. 9b's utilization plot.
//!
//! # Example
//!
//! ```
//! use ace_engine::{AceConfig, AceState};
//! use ace_simcore::SimTime;
//!
//! let mut ace = AceState::new(AceConfig::paper_default(), &[0.75, 0.09375, 0.09375, 0.1875]);
//! // Admit a 64 kB chunk into phase 0 and run a reduction step.
//! assert!(ace.try_admit(0, 64 * 1024, SimTime::ZERO));
//! let g = ace.reduce(SimTime::ZERO, 8 * 1024);
//! assert!(g.end > g.start);
//! ace.release(0, 64 * 1024, g.end);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alu;
mod config;
mod dma;
mod fsm;
mod sram;
pub mod synthesis;

pub use alu::AluModel;
pub use config::AceConfig;
pub use dma::DmaEngine;
pub use fsm::FsmPool;
pub use sram::SramPartitioner;

use ace_simcore::{Grant, SimTime, UtilizationTracker};

/// The dynamic state of one endpoint's ACE: SRAM occupancy, FSM slots,
/// ALU and SRAM-port bandwidth, and busy-interval tracking.
#[derive(Debug, Clone)]
pub struct AceState {
    config: AceConfig,
    sram: SramPartitioner,
    fsms: FsmPool,
    alu: AluModel,
    sram_port: ace_simcore::BandwidthServer,
    active_chunks: usize,
    busy: UtilizationTracker,
    busy_since: Option<SimTime>,
}

impl AceState {
    /// Builds the engine state for `config`, partitioning the SRAM by the
    /// per-phase `weights` (bandwidth × chunk-size heuristic, Section IV-I).
    /// The partitioner appends the terminal partition automatically.
    pub fn new(config: AceConfig, weights: &[f64]) -> AceState {
        let sram = SramPartitioner::new(config.sram_bytes, weights);
        let fsms = FsmPool::new(config.num_fsms, weights.len());
        let alu = AluModel::new(&config);
        let sram_port = ace_simcore::BandwidthServer::new(config.sram_port_bytes_per_cycle());
        AceState {
            config,
            sram,
            fsms,
            alu,
            sram_port,
            active_chunks: 0,
            busy: UtilizationTracker::new(),
            busy_since: None,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &AceConfig {
        &self.config
    }

    /// Immutable view of the SRAM partitioner.
    pub fn sram(&self) -> &SramPartitioner {
        &self.sram
    }

    /// Immutable view of the FSM pool.
    pub fn fsms(&self) -> &FsmPool {
        &self.fsms
    }

    /// Attempts to admit a chunk of `bytes` into the partition for
    /// `phase`. On success the engine is considered utilized from `now`
    /// until the matching [`release`](AceState::release).
    pub fn try_admit(&mut self, phase: usize, bytes: u64, now: SimTime) -> bool {
        if !self.sram.try_alloc(phase, bytes) {
            return false;
        }
        if self.active_chunks == 0 {
            self.busy_since = Some(now);
        }
        self.active_chunks += 1;
        true
    }

    /// Releases a previously admitted chunk.
    ///
    /// # Panics
    ///
    /// Panics if no chunk is active or the partition accounting underflows.
    pub fn release(&mut self, phase: usize, bytes: u64, now: SimTime) {
        assert!(self.active_chunks > 0, "release without admit");
        self.sram.free(phase, bytes);
        self.active_chunks -= 1;
        if self.active_chunks == 0 {
            let since = self.busy_since.take().expect("busy interval open");
            self.busy.record(since, now);
        }
    }

    /// Number of chunks currently resident in the engine.
    pub fn active_chunks(&self) -> usize {
        self.active_chunks
    }

    /// Dispatches one chunk-step onto an FSM assigned to `phase` for
    /// `duration` cycles.
    pub fn fsm_dispatch(&mut self, phase: usize, now: SimTime, duration: u64) -> Grant {
        self.fsms.dispatch(phase, now, duration)
    }

    /// Runs a reduction of `bytes` through the ALUs (reads two operands
    /// and writes one result through the SRAM port).
    pub fn reduce(&mut self, now: SimTime, bytes: u64) -> Grant {
        let port = self.sram_port.request(now, 3 * bytes);
        let alu = self.alu.reduce(port.start, bytes);
        Grant {
            start: port.start,
            end: alu.end.max(port.end),
        }
    }

    /// Moves `bytes` through the SRAM port (store-and-forward without
    /// reduction: one read plus one write).
    pub fn sram_copy(&mut self, now: SimTime, bytes: u64) -> Grant {
        self.sram_port.request(now, 2 * bytes)
    }

    /// Exact engine-busy cycles over `[0, horizon]` ("ACE is considered
    /// utilized when it has assigned at least one chunk for processing").
    /// This is the integer ground truth behind Fig. 9b; reports must
    /// consume it directly rather than reconstructing cycles from the
    /// [`utilization`](AceState::utilization) ratio.
    pub fn busy_cycles(&self, horizon: SimTime) -> u64 {
        // An open busy interval extends to the horizon.
        let mut busy = self.busy.busy_cycles();
        if let Some(since) = self.busy_since {
            busy += horizon.saturating_since(since);
        }
        busy
    }

    /// Engine-busy fraction over `[0, horizon]` — Fig. 9b's utilization
    /// metric, derived from the exact [`busy_cycles`](AceState::busy_cycles)
    /// counter.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon.cycles() == 0 {
            0.0
        } else {
            (self.busy_cycles(horizon) as f64 / horizon.cycles() as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> AceState {
        AceState::new(AceConfig::paper_default(), &[1.0, 0.5, 0.5, 1.0])
    }

    #[test]
    fn admit_release_roundtrip() {
        let mut s = state();
        assert!(s.try_admit(0, 64 * 1024, SimTime::ZERO));
        assert_eq!(s.active_chunks(), 1);
        s.release(0, 64 * 1024, SimTime::from_cycles(100));
        assert_eq!(s.active_chunks(), 0);
        assert!((s.utilization(SimTime::from_cycles(200)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn admission_is_bounded_by_partition_capacity() {
        let mut s = state();
        let cap = s.sram().capacity(0);
        let mut admitted = 0u64;
        while s.try_admit(0, 64 * 1024, SimTime::ZERO) {
            admitted += 64 * 1024;
        }
        assert!(admitted <= cap);
        assert!(admitted + 64 * 1024 > cap);
    }

    #[test]
    fn utilization_covers_open_interval() {
        let mut s = state();
        s.try_admit(0, 1024, SimTime::from_cycles(10));
        // Still active: busy from 10 to horizon 110 = 100 of 110.
        let u = s.utilization(SimTime::from_cycles(110));
        assert!((u - 100.0 / 110.0).abs() < 1e-9);
    }

    #[test]
    fn reduce_passes_through_port_and_alu() {
        let mut s = state();
        let g = s.reduce(SimTime::ZERO, 8 * 1024);
        // Port: 16 KiB at 1024 B/cycle = 16 cycles; ALU: 8 KiB at 256
        // B/cycle = 32 cycles (the ALU is the longer pole).
        assert_eq!(g.start, SimTime::ZERO);
        assert!(g.end.cycles() >= 32);
    }

    #[test]
    fn copy_is_cheaper_than_reduce() {
        let mut a = state();
        let mut b = state();
        let gr = a.reduce(SimTime::ZERO, 8 * 1024);
        let gc = b.sram_copy(SimTime::ZERO, 8 * 1024);
        assert!(gc.end <= gr.end);
    }

    #[test]
    #[should_panic(expected = "release without admit")]
    fn release_without_admit_panics() {
        let mut s = state();
        s.release(0, 1024, SimTime::ZERO);
    }
}
