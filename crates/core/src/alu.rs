//! The ACE ALU array: reduction-sum throughput (Section IV-I).

use ace_simcore::{BandwidthServer, Grant, SimTime};

use crate::config::AceConfig;

/// Models the ALU array as a FIFO bandwidth resource whose capacity is the
/// aggregate FP16 lane throughput (default 4 units × 32 lanes × 2 bytes =
/// 256 bytes of reduced output per cycle).
#[derive(Debug, Clone)]
pub struct AluModel {
    server: BandwidthServer,
    bytes_per_cycle: f64,
}

impl AluModel {
    /// Builds the ALU model from an engine configuration.
    pub fn new(config: &AceConfig) -> AluModel {
        let bpc = config.alu_bytes_per_cycle();
        AluModel {
            server: BandwidthServer::new(bpc),
            bytes_per_cycle: bpc,
        }
    }

    /// Reduction throughput in bytes per cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }

    /// Reduces `bytes` of gradient data (element-wise sum of two operands
    /// producing `bytes` of output).
    pub fn reduce(&mut self, now: SimTime, bytes: u64) -> Grant {
        self.server.request(now, bytes)
    }

    /// Total bytes reduced.
    pub fn bytes_reduced(&self) -> u64 {
        self.server.bytes_served()
    }

    /// ALU busy fraction over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        self.server.utilization(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_throughput_is_256_bytes_per_cycle() {
        let alu = AluModel::new(&AceConfig::paper_default());
        assert_eq!(alu.bytes_per_cycle(), 256.0);
    }

    #[test]
    fn reduction_time_matches_throughput() {
        let mut alu = AluModel::new(&AceConfig::paper_default());
        let g = alu.reduce(SimTime::ZERO, 8 * 1024);
        assert_eq!(g.end.cycles(), 32); // 8192 / 256
        assert_eq!(alu.bytes_reduced(), 8 * 1024);
    }

    #[test]
    fn alu_keeps_pace_with_fastest_link() {
        // 256 B/cycle at 1245 MHz ≈ 318 GB/s — faster than the 200 GB/s
        // intra-package link, so the ALU never bottlenecks a single ring.
        let freq = ace_simcore::npu_frequency();
        let alu = AluModel::new(&AceConfig::paper_default());
        assert!(freq.gbps(alu.bytes_per_cycle()) > 200.0);
    }

    #[test]
    fn reductions_serialize() {
        let mut alu = AluModel::new(&AceConfig::paper_default());
        let a = alu.reduce(SimTime::ZERO, 2560);
        let b = alu.reduce(SimTime::ZERO, 2560);
        assert!(b.end > a.end);
    }
}
