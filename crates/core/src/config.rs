//! ACE configuration parameters (Section IV-I).

use ace_simcore::Frequency;

/// Static configuration of one ACE instance.
///
/// The paper's design-space exploration (Fig. 9a) sweeps the SRAM size and
/// FSM count and settles on 4 MB / 16 FSMs; the ALUs are "4 wide ALU
/// units, each capable of performing 16×FP32 or 32×FP16 in parallel", and
/// the SRAM interconnect uses wide 64-byte buses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AceConfig {
    /// Total scratchpad SRAM in bytes (default 4 MB in 4 × 1 MB banks).
    pub sram_bytes: u64,
    /// Number of programmable FSMs (default 16).
    pub num_fsms: usize,
    /// Number of ALU units (default 4).
    pub alu_units: usize,
    /// FP16 lanes per ALU unit (default 32).
    pub alu_fp16_lanes: usize,
    /// Message size in bytes (Table V: 8 kB).
    pub message_bytes: u64,
    /// Width of each SRAM bus in bytes (default 64).
    pub bus_width_bytes: u64,
    /// SRAM bank size in bytes (default 1 MB; bank count = sram/bank).
    pub bank_bytes: u64,
    /// Engine clock (same domain as the NPU in the paper's model).
    pub freq: Frequency,
}

impl AceConfig {
    /// The paper's chosen configuration: 4 MB SRAM, 16 FSMs, 4×32-lane
    /// FP16 ALUs, 8 kB messages.
    pub fn paper_default() -> AceConfig {
        AceConfig {
            sram_bytes: 4 * 1024 * 1024,
            num_fsms: 16,
            alu_units: 4,
            alu_fp16_lanes: 32,
            message_bytes: 8 * 1024,
            bus_width_bytes: 64,
            bank_bytes: 1024 * 1024,
            freq: ace_simcore::npu_frequency(),
        }
    }

    /// A design-space variant with different SRAM size and FSM count
    /// (Fig. 9a sweeps 1–8 MB and 4–20 FSMs).
    pub fn with_dse_point(sram_mb: u64, num_fsms: usize) -> AceConfig {
        AceConfig {
            sram_bytes: sram_mb * 1024 * 1024,
            num_fsms,
            ..AceConfig::paper_default()
        }
    }

    /// Number of SRAM banks.
    pub fn banks(&self) -> u64 {
        (self.sram_bytes / self.bank_bytes).max(1)
    }

    /// Aggregate ALU reduction throughput in bytes per cycle
    /// (FP16: lanes × 2 bytes × units; default 4 × 32 × 2 = 256 B/cycle).
    pub fn alu_bytes_per_cycle(&self) -> f64 {
        (self.alu_units * self.alu_fp16_lanes * 2) as f64
    }

    /// Aggregate SRAM port bandwidth in bytes per cycle: each bank drives
    /// independent 64-byte read and write buses, dual-pumped — the paper
    /// sizes this interconnect so the engine "fills most of the network
    /// pipeline" (Section IV-I) rather than bottlenecking it.
    pub fn sram_port_bytes_per_cycle(&self) -> f64 {
        (self.banks() * self.bus_width_bytes * 4) as f64
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.sram_bytes == 0 {
            return Err("SRAM must be nonzero".into());
        }
        if self.num_fsms == 0 {
            return Err("need at least one FSM".into());
        }
        if self.alu_units == 0 || self.alu_fp16_lanes == 0 {
            return Err("need at least one ALU lane".into());
        }
        if self.message_bytes == 0 || self.bus_width_bytes == 0 {
            return Err("message and bus width must be nonzero".into());
        }
        Ok(())
    }
}

impl Default for AceConfig {
    fn default() -> Self {
        AceConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_iv() {
        let c = AceConfig::paper_default();
        assert_eq!(c.sram_bytes, 4 << 20);
        assert_eq!(c.num_fsms, 16);
        assert_eq!(c.banks(), 4);
        assert_eq!(c.alu_bytes_per_cycle(), 256.0);
        assert_eq!(c.sram_port_bytes_per_cycle(), 1024.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn dse_point_overrides_sram_and_fsms() {
        let c = AceConfig::with_dse_point(8, 20);
        assert_eq!(c.sram_bytes, 8 << 20);
        assert_eq!(c.num_fsms, 20);
        assert_eq!(c.banks(), 8);
        // More banks => more aggregate port bandwidth.
        assert_eq!(c.sram_port_bytes_per_cycle(), 2048.0);
    }

    #[test]
    fn validation_catches_zeroes() {
        let mut c = AceConfig::paper_default();
        c.num_fsms = 0;
        assert!(c.validate().is_err());
        let mut c = AceConfig::paper_default();
        c.sram_bytes = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn alu_throughput_tracks_lanes() {
        let mut c = AceConfig::paper_default();
        c.alu_fp16_lanes = 16; // FP32 mode
        assert_eq!(c.alu_bytes_per_cycle(), 128.0);
    }
}
