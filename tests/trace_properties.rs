//! Property suite for the `ace-trace` instrumentation layer.
//!
//! Invariants, checked over randomized small configurations (same
//! deterministic splitmix64 generator as `property_tests.rs`):
//!
//! * **Link reconciliation** — the sum of recorded `link:` span cycles
//!   equals the fabric's own busy-cycle meter exactly: the trace is a
//!   faithful retelling of what the network accounted, not a parallel
//!   bookkeeping that can drift.
//! * **Attribution conservation** — every sweep row's bottleneck
//!   decomposition (compute / per-pipe / other buckets) sums exactly to
//!   its end-to-end cycle count, in both execution tiers.
//! * **Export validity** — recorded traces render to Chrome
//!   `trace_event` JSON that passes the structural validator, for both
//!   standalone collectives and full training runs.

use ace_platform::collectives::{CollectiveOp, CollectivePlan};
use ace_platform::net::{NetworkParams, TopologySpec};
use ace_platform::simcore::SimTime;
use ace_platform::sweep::scenario::EngineSpec;
use ace_platform::sweep::{execute_tier, PointKind, RunPoint, Tier};
use ace_platform::system::{
    CollectiveExecutor, ExecutorOptions, RunConditions, RunSpec, SystemBuilder, SystemConfig,
};
use ace_platform::trace::chrome::{to_chrome_json, validate_chrome_trace};
use ace_platform::trace::RecordingTracer;
use ace_platform::workloads::Workload;

/// Deterministic splitmix64 PRNG (see `property_tests.rs`).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range(0, items.len() as u64) as usize]
    }
}

/// Small fabrics that keep the exact executor fast in debug-mode tests.
fn small_specs() -> Vec<TopologySpec> {
    vec![
        "2x1x1".parse().unwrap(),
        "4x1x1".parse().unwrap(),
        "2x2x1".parse().unwrap(),
        "4x2".parse().unwrap(),
        "switch:4".parse().unwrap(),
        "switch:8".parse().unwrap(),
        "hier:2x2".parse().unwrap(),
    ]
}

#[test]
fn link_spans_reconcile_with_the_fabric_meter() {
    // Every granted link interval the executor records must re-sum to
    // exactly the cycles the network's own utilization meter accounted.
    let mut rng = Rng::new(0x7ace_0001);
    let configs = [
        SystemConfig::Ace,
        SystemConfig::BaselineCommOpt,
        SystemConfig::BaselineNoOverlap,
    ];
    let ops = [
        CollectiveOp::AllReduce,
        CollectiveOp::ReduceScatter,
        CollectiveOp::AllGather,
    ];
    for _ in 0..10 {
        let spec = *rng.pick(&small_specs());
        let config = *rng.pick(&configs);
        let op = *rng.pick(&ops);
        let payload = rng.range(64, 2049) * 1024; // 64 KB – 2 MB
        let params = NetworkParams::paper_default();
        let plan = CollectivePlan::for_spec(op, spec);
        let weights = CollectiveExecutor::phase_weights(&plan, &params);
        let mut ex = CollectiveExecutor::with_tracer(
            spec,
            params,
            ExecutorOptions::default(),
            move || config.make_engine(&weights),
            RecordingTracer::new(),
        );
        let h = ex.issue(op, payload, SimTime::ZERO);
        ex.run_until_complete(h);
        assert_eq!(ex.tracer().dropped(), 0, "{spec} {config} {op}");
        assert_eq!(
            ex.tracer().span_cycles_with_prefix("link:") as f64,
            ex.network().util_busy_total_cycles(),
            "{spec} {config} {op} {payload}B: link spans diverged from the meter"
        );
    }
}

#[test]
fn attribution_conserves_across_random_points_and_tiers() {
    let mut rng = Rng::new(0x7ace_0002);
    let mut points: Vec<RunPoint> = Vec::new();
    for _ in 0..8 {
        let engine = match rng.range(0, 3) {
            0 => EngineSpec::Ideal,
            1 => EngineSpec::baseline(*rng.pick(&[128.0, 450.0]), 6),
            _ => EngineSpec::ace(*rng.pick(&[64.0, 128.0])),
        };
        points.push(RunPoint {
            topology: *rng.pick(&small_specs()),
            conditions: RunConditions::default(),
            kind: PointKind::Collective {
                engine,
                op: *rng.pick(&[CollectiveOp::AllReduce, CollectiveOp::AllToAll]),
                payload_bytes: rng.range(64, 1025) * 1024,
            },
        });
    }
    for point in &points {
        for tier in [Tier::Exact, Tier::Analytic] {
            let m = execute_tier(point, tier);
            assert!(
                m.attribution.conserves(),
                "{tier} {point:?}: buckets do not sum to the total: {:?}",
                m.attribution
            );
            assert_eq!(
                m.attribution.total_cycles, m.completion_cycles,
                "{tier} {point:?}: attribution total diverged from the row total"
            );
        }
    }
}

#[test]
fn traced_collective_exports_valid_chrome_json() {
    let mut rng = Rng::new(0x7ace_0003);
    for _ in 0..4 {
        let spec = *rng.pick(&small_specs());
        let (report, tracer) = RunSpec::new(
            spec,
            ace_platform::system::EngineKind::AceDse {
                dma_mem_gbps: 128.0,
                sram_mb: 4,
                fsms: 16,
            },
            CollectiveOp::AllReduce,
            rng.range(128, 1025) * 1024,
        )
        .traced()
        .run_traced()
        .expect("pristine run cannot fail");
        assert!(report.attribution.conserves());
        let json = to_chrome_json(&tracer);
        let events = validate_chrome_trace(&json).expect("collective trace must validate");
        assert!(events > 0, "{spec}: empty trace");
    }
}

#[test]
fn traced_training_exports_valid_chrome_json_with_task_spans() {
    let sim = SystemBuilder::new()
        .topology(2, 1, 1)
        .config(SystemConfig::Ace)
        .workload(Workload::resnet50())
        .iterations(1)
        .build_traced(RecordingTracer::new())
        .unwrap();
    let (report, tracer) = sim.run_with_tracer();
    assert!(report.attribution().conserves());
    assert!(
        tracer.count_with_prefix("task:") > 0,
        "training timeline recorded no task spans"
    );
    let json = to_chrome_json(&tracer);
    let events = validate_chrome_trace(&json).expect("training trace must validate");
    assert!(events > 0);
}
