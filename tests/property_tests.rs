//! Property-based tests over the simulator's core invariants.

use proptest::prelude::*;

use ace_platform::collectives::{split_even, traffic, CollectiveOp, CollectivePlan, Granularity};
use ace_platform::net::{NodeId, TorusShape};
use ace_platform::simcore::{BandwidthServer, SimTime, SlotServer};
use ace_platform::system::{run_single_collective, EngineKind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Chunking conserves bytes for any payload and chunk size.
    #[test]
    fn chunking_conserves_bytes(payload in 0u64..100_000_000, chunk_kb in 1u64..512) {
        let g = Granularity {
            chunk_bytes: chunk_kb * 1024,
            message_bytes: 1024,
            packet_bytes: 256,
        };
        let chunks = g.chunks(payload);
        prop_assert_eq!(chunks.iter().sum::<u64>(), payload);
        for &c in &chunks {
            prop_assert!(c <= g.chunk_bytes);
            prop_assert!(c > 0);
        }
    }

    /// Even splitting conserves and balances within one byte.
    #[test]
    fn split_even_invariants(total in 0u64..1_000_000_000, parts in 1usize..256) {
        let shares = split_even(total, parts);
        prop_assert_eq!(shares.len(), parts);
        prop_assert_eq!(shares.iter().sum::<u64>(), total);
        let max = *shares.iter().max().unwrap();
        let min = *shares.iter().min().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// Torus coordinates roundtrip for arbitrary shapes.
    #[test]
    fn torus_coord_roundtrip(l in 1usize..9, v in 1usize..9, h in 1usize..9) {
        prop_assume!(l * v * h >= 2);
        let shape = TorusShape::new(l, v, h).unwrap();
        for node in shape.iter_nodes() {
            prop_assert_eq!(shape.node_at(shape.coord(node)), node);
        }
    }

    /// XYZ routes are connected, end at the destination, and never exceed
    /// the sum of half-ring distances.
    #[test]
    fn xyz_routes_are_valid(
        l in 1usize..6, v in 1usize..6, h in 1usize..6,
        src_seed in 0usize..1000, dst_seed in 0usize..1000,
    ) {
        prop_assume!(l * v * h >= 2);
        let shape = TorusShape::new(l, v, h).unwrap();
        let src = NodeId(src_seed % shape.nodes());
        let dst = NodeId(dst_seed % shape.nodes());
        let route = shape.route(src, dst);
        if src == dst {
            prop_assert!(route.is_empty());
        } else {
            prop_assert_eq!(route.last().unwrap().to, dst);
            let mut cur = src;
            for hop in &route {
                prop_assert_eq!(hop.from, cur);
                cur = hop.to;
            }
            let bound = l / 2 + v / 2 + h / 2;
            prop_assert!(route.len() <= bound.max(1));
        }
    }

    /// The all-reduce plan's data accounting: output returns to the full
    /// payload, and bytes sent match the closed form 2*(k-1)/k per ring.
    #[test]
    fn all_reduce_plan_conserves_data(l in 1usize..6, v in 1usize..6, h in 1usize..6) {
        prop_assume!(l * v * h >= 2);
        let shape = TorusShape::new(l, v, h).unwrap();
        let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, shape);
        // Following fractions through every phase ends at 1.0.
        let mut frac: f64 = 1.0;
        for p in plan.phases() {
            prop_assert!((p.input_fraction - frac).abs() < 1e-9 || p.dim.is_some());
            frac = p.output_fraction();
        }
        prop_assert!((frac - 1.0).abs() < 1e-9, "all-reduce must restore the payload");
        // Each ring all-reduce sends at most 2x its input; without a local
        // reduce-scatter (l = 1) two full-payload ring phases can approach
        // 4x, with one they stay under 2.5x.
        let sent = plan.bytes_sent_per_node(1_000_000) / 1_000_000.0;
        prop_assert!(sent > 0.0);
        prop_assert!(sent < 4.0, "sent fraction {sent}");
    }

    /// Baseline memory traffic always exceeds ACE's for multi-node plans.
    #[test]
    fn baseline_traffic_dominates_ace(l in 2usize..6, v in 1usize..6, h in 1usize..6, payload in 1u64..(64 << 20)) {
        let shape = TorusShape::new(l, v, h).unwrap();
        let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, shape);
        let base = traffic::baseline_traffic(&plan, payload);
        let ace = traffic::ace_traffic(payload);
        prop_assert!(base.total() >= ace.total() * 0.99);
        prop_assert!(base.reads >= 0.0);
        prop_assert!(base.writes >= 0.0);
    }

    /// Bandwidth servers never overlap grants and conserve bytes.
    #[test]
    fn bandwidth_server_fifo_invariants(
        capacity in 1.0f64..1000.0,
        requests in prop::collection::vec((0u64..100_000, 0u64..10_000), 1..50),
    ) {
        let mut server = BandwidthServer::new(capacity);
        let mut last_end = SimTime::ZERO;
        let mut total = 0u64;
        for (at, bytes) in requests {
            let g = server.request(SimTime::from_cycles(at), bytes);
            prop_assert!(g.end >= g.start);
            if bytes > 0 {
                // FIFO: service starts no earlier than the previous end - 1
                // (rounding can overlap by at most one cycle boundary).
                prop_assert!(g.start.cycles() + 1 >= last_end.cycles().min(g.start.cycles() + 1));
                last_end = g.end;
            }
            total += bytes;
        }
        prop_assert_eq!(server.bytes_served(), total);
    }

    /// Slot servers never run more than `k` concurrent grants.
    #[test]
    fn slot_server_respects_parallelism(
        k in 1usize..8,
        jobs in prop::collection::vec(1u64..1000, 1..40),
    ) {
        let mut server = SlotServer::new(k);
        let grants: Vec<_> = jobs.iter().map(|&d| server.request(SimTime::ZERO, d)).collect();
        // Instantaneous concurrency at every grant-start never exceeds k.
        for g in &grants {
            let concurrent = grants
                .iter()
                .filter(|o| o.start <= g.start && g.start < o.end)
                .count();
            prop_assert!(concurrent <= k, "{concurrent} concurrent > {k}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// End-to-end: a single all-reduce completes on arbitrary small tori
    /// with every engine, and the ideal endpoint is never slower.
    #[test]
    fn collectives_complete_and_ideal_wins(
        l in 2usize..5, v in 1usize..3, h in 1usize..3,
        payload_kb in 64u64..2048,
    ) {
        let shape = TorusShape::new(l, v, h).unwrap();
        let payload = payload_kb * 1024;
        let ideal = run_single_collective(shape, EngineKind::Ideal, CollectiveOp::AllReduce, payload);
        let ace = run_single_collective(
            shape,
            EngineKind::Ace { dma_mem_gbps: 128.0 },
            CollectiveOp::AllReduce,
            payload,
        );
        let base = run_single_collective(
            shape,
            EngineKind::Baseline { comm_mem_gbps: 450.0, comm_sms: 6 },
            CollectiveOp::AllReduce,
            payload,
        );
        prop_assert!(ideal.completion.cycles() > 0);
        // Ideal is an upper bound modulo small injection-pacing noise.
        prop_assert!(ace.completion.cycles() as f64 >= ideal.completion.cycles() as f64 * 0.9);
        prop_assert!(base.completion.cycles() as f64 >= ideal.completion.cycles() as f64 * 0.9);
    }
}
