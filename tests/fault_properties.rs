//! Property suite for the fault/contention/straggler run conditions.
//!
//! Invariants:
//!
//! * **Determinism** — a faulted sweep renders byte-identical CSV for
//!   any `--threads` and `--sim-threads` setting: the seeded fault draw
//!   is part of the point identity, not of the execution schedule.
//! * **Byte conservation** — killing cables reroutes traffic, it never
//!   drops it: every collective still completes, and the fabric carries
//!   at least as many bytes as on the pristine run (detours add hops).
//! * **Analytic honesty** — the α–β degradation terms track the exact
//!   executor within the same 0.5–2x band the pristine property suite
//!   enforces, so `hybrid` sweeps stay trustworthy under faults.
//! * **Clear failure** — a disconnecting `FaultSpec` is an error from
//!   every entry point (including with `sim_threads > 1`), never a hang
//!   or a silently-pristine result.

use ace_platform::collectives::CollectiveOp;
use ace_platform::net::TopologySpec;
use ace_platform::sweep::report::to_csv;
use ace_platform::sweep::{run_scenario, EngineFamily, RunnerOptions, Scenario};
use ace_platform::system::{
    analytic_collective_run_with_conditions, EngineKind, ExecutorOptions, RunConditions, RunError,
    RunSpec,
};

fn faulted_scenario() -> Scenario {
    let mut sc = Scenario::collective("fault-determinism");
    sc.topologies = vec!["4x4".parse().unwrap(), "hier:4x4".parse().unwrap()];
    sc.engines = vec![EngineFamily::Ideal, EngineFamily::Ace];
    sc.mem_gbps = vec![128.0];
    sc.sram_mb = vec![4];
    sc.fsms = vec![16];
    sc.payload_bytes = vec![512 * 1024];
    sc.faults = vec![
        "none".parse().unwrap(),
        "kill:1@seed:42".parse().unwrap(),
        "kill:2@seed:42".parse().unwrap(),
    ];
    sc.contention = vec!["none".parse().unwrap(), "uniform:8".parse().unwrap()];
    sc
}

#[test]
fn faulted_sweep_csv_is_byte_identical_across_threads_and_sim_threads() {
    let sc = faulted_scenario();
    let baseline = run_scenario(
        &sc,
        RunnerOptions {
            threads: 1,
            sim_threads: 1,
        },
    )
    .unwrap();
    let csv = to_csv(&baseline);
    assert!(
        csv.contains("kill:2@seed:42"),
        "fault axis missing from CSV"
    );
    for (threads, sim_threads) in [(4, 1), (1, 2), (4, 2)] {
        let other = run_scenario(
            &sc,
            RunnerOptions {
                threads,
                sim_threads,
            },
        )
        .unwrap();
        assert_eq!(
            csv,
            to_csv(&other),
            "threads={threads} sim_threads={sim_threads} diverged"
        );
    }
}

#[test]
fn degraded_fabrics_conserve_bytes_and_complete() {
    let engine = EngineKind::Ace {
        dma_mem_gbps: 128.0,
    };
    for topo in ["4x4", "4x2x2", "hier:4x4"] {
        let spec: TopologySpec = topo.parse().unwrap();
        for op in [CollectiveOp::AllReduce, CollectiveOp::AllToAll] {
            let pristine = RunSpec::new(spec, engine, op, 1 << 20)
                .run()
                .expect("pristine run cannot fail");
            for faults in ["kill:1@seed:42", "kill:2@seed:42", "kill:1@seed:7"] {
                let degraded = RunSpec::new(spec, engine, op, 1 << 20)
                    .faults(faults.parse().unwrap())
                    .run()
                    .unwrap_or_else(|e| panic!("{topo} {op} {faults}: {e}"));
                assert!(
                    degraded.network_bytes >= pristine.network_bytes,
                    "{topo} {op} {faults}: detoured fabric carried fewer bytes \
                     ({} < {})",
                    degraded.network_bytes,
                    pristine.network_bytes
                );
                assert!(
                    degraded.completion.cycles() >= pristine.completion.cycles(),
                    "{topo} {op} {faults}: a degraded fabric finished early"
                );
            }
        }
    }
}

#[test]
fn analytic_tracks_exact_under_degradation() {
    // The same wide-but-meaningful band the pristine property suite uses:
    // comm-bound payloads, estimate within [0.5x, 2x] of the executor.
    let engine = EngineKind::Ace {
        dma_mem_gbps: 128.0,
    };
    for topo in ["4x4", "hier:4x4"] {
        let spec: TopologySpec = topo.parse().unwrap();
        for faults in ["kill:1@seed:42", "degrade:50:1@seed:7"] {
            for contention in ["none", "uniform:8"] {
                let conditions = RunConditions {
                    faults: faults.parse().unwrap(),
                    contention: contention.parse().unwrap(),
                    ..Default::default()
                };
                let exact = RunSpec::new(spec, engine, CollectiveOp::AllReduce, 8 << 20)
                    .conditions(conditions.clone())
                    .run()
                    .unwrap()
                    .completion
                    .cycles() as f64;
                let analytic = analytic_collective_run_with_conditions(
                    spec,
                    engine,
                    CollectiveOp::AllReduce,
                    8 << 20,
                    &conditions,
                )
                .unwrap()
                .cycles;
                assert!(
                    analytic <= exact * 2.0 && analytic >= exact * 0.5,
                    "{topo} {faults} {contention}: analytic {analytic} vs exact {exact}"
                );
            }
        }
    }
}

#[test]
fn disconnection_errors_cleanly_even_with_sim_threads() {
    // Killing every link at a node disconnects the torus; both the serial
    // and the domain-partitioned paths must surface RunError::Fault
    // instead of hanging or quietly simulating the pristine fabric.
    let spec: TopologySpec = "4x4".parse().unwrap();
    for sim_threads in [1, 4] {
        let err = RunSpec::new(spec, EngineKind::Ideal, CollectiveOp::AllReduce, 1 << 20)
            .options(ExecutorOptions {
                sim_threads,
                ..Default::default()
            })
            .faults("kill:node:5".parse().unwrap())
            .run()
            .expect_err("a disconnected partition must be an error");
        assert!(
            matches!(err, RunError::Fault(_)),
            "sim_threads={sim_threads}: {err}"
        );
        assert!(
            err.to_string().contains("disconnect"),
            "sim_threads={sim_threads}: unhelpful error '{err}'"
        );
    }
}
