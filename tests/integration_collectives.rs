//! Cross-crate integration tests over the standalone collective runner:
//! the Fig. 5 / Fig. 6 machinery, edge topologies, and the extension
//! workload.

use ace_platform::collectives::CollectiveOp;
use ace_platform::net::TorusShape;
use ace_platform::system::{CollectiveRunReport, EngineKind, RunSpec, SystemBuilder, SystemConfig};
use ace_platform::workloads::Workload;

/// All collectives here run on pristine fabrics, where [`RunSpec::run`]
/// cannot fail.
fn run_collective(
    shape: TorusShape,
    kind: EngineKind,
    op: CollectiveOp,
    payload_bytes: u64,
) -> CollectiveRunReport {
    RunSpec::new(shape, kind, op, payload_bytes)
        .run()
        .expect("pristine run cannot fail")
}

#[test]
fn two_node_torus_all_reduce_works() {
    // The minimum platform: two NPUs on one ring.
    let shape = TorusShape::new(2, 1, 1).expect("valid shape");
    for kind in [
        EngineKind::Ideal,
        EngineKind::Ace {
            dma_mem_gbps: 128.0,
        },
        EngineKind::Baseline {
            comm_mem_gbps: 450.0,
            comm_sms: 6,
        },
    ] {
        let r = run_collective(shape, kind, CollectiveOp::AllReduce, 1 << 20);
        assert!(r.completion.cycles() > 0, "{kind:?}");
        assert!(r.network_bytes > 0);
    }
}

#[test]
fn single_package_ring_uses_only_intra_links() {
    // 8 NPUs on one package: only the fast 200 GB/s links exist, so
    // throughput should far exceed the inter-package-limited tori.
    let flat = run_collective(
        TorusShape::new(8, 1, 1).expect("valid shape"),
        EngineKind::Ideal,
        CollectiveOp::AllReduce,
        16 << 20,
    );
    let torus = run_collective(
        TorusShape::new(4, 2, 2).expect("valid shape"),
        EngineKind::Ideal,
        CollectiveOp::AllReduce,
        16 << 20,
    );
    assert!(
        flat.completion < torus.completion,
        "intra-package-only must be faster: {} vs {}",
        flat.completion,
        torus.completion
    );
}

#[test]
fn all_to_all_scales_with_node_count() {
    // Direct all-to-all crosses more links and hops on larger tori.
    let small = run_collective(
        TorusShape::new(4, 2, 2).expect("valid shape"),
        EngineKind::Ace {
            dma_mem_gbps: 128.0,
        },
        CollectiveOp::AllToAll,
        4 << 20,
    );
    let large = run_collective(
        TorusShape::new(4, 4, 4).expect("valid shape"),
        EngineKind::Ace {
            dma_mem_gbps: 128.0,
        },
        CollectiveOp::AllToAll,
        4 << 20,
    );
    assert!(large.completion > small.completion);
}

#[test]
fn achieved_bandwidth_is_within_physical_limits() {
    // No engine may exceed the per-NPU fabric bandwidth (500 GB/s).
    for kind in [
        EngineKind::Ideal,
        EngineKind::Ace {
            dma_mem_gbps: 900.0,
        },
        EngineKind::Baseline {
            comm_mem_gbps: 900.0,
            comm_sms: 80,
        },
    ] {
        let r = run_collective(
            TorusShape::new(4, 2, 2).expect("valid shape"),
            kind,
            CollectiveOp::AllReduce,
            32 << 20,
        );
        assert!(
            r.achieved_gbps_per_npu < 500.0,
            "{kind:?} reported {} GB/s",
            r.achieved_gbps_per_npu
        );
    }
}

#[test]
fn transformer_lm_trains_on_every_config() {
    for config in SystemConfig::ALL {
        let r = SystemBuilder::new()
            .topology(4, 2, 2)
            .config(config)
            .workload(Workload::transformer_lm())
            .build()
            .expect("valid system")
            .run();
        assert!(r.total_time_us() > 0.0, "{config}");
    }
}

#[test]
fn transformer_ace_beats_baselines() {
    let run = |config| {
        SystemBuilder::new()
            .topology(4, 2, 2)
            .config(config)
            .workload(Workload::transformer_lm())
            .build()
            .expect("valid system")
            .run()
            .total_time_us()
    };
    let ace = run(SystemConfig::Ace);
    for b in [
        SystemConfig::BaselineNoOverlap,
        SystemConfig::BaselineCommOpt,
        SystemConfig::BaselineCompOpt,
    ] {
        assert!(ace <= run(b) * 1.02, "{b}");
    }
}

#[test]
fn single_iteration_is_cheaper_than_two() {
    let run = |iters| {
        SystemBuilder::new()
            .topology(4, 2, 2)
            .config(SystemConfig::Ace)
            .workload(Workload::resnet50())
            .iterations(iters)
            .build()
            .expect("valid system")
            .run()
    };
    let one = run(1);
    let two = run(2);
    assert!(one.total_time_us() < two.total_time_us());
    assert_eq!(one.iterations(), 1);
    // Per-iteration time should be comparable (within pipeline effects).
    let ratio = two.iteration_time_us() / one.iteration_time_us();
    assert!((0.6..1.4).contains(&ratio), "ratio {ratio}");
}
