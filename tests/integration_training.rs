//! Cross-crate integration tests: full training simulations exercising
//! every layer of the stack (workloads → system → endpoint → engine →
//! collectives → net/mem/compute → simcore) and checking the paper's
//! qualitative results hold end to end.

use ace_platform::system::{IterationReport, SystemBuilder, SystemConfig};
use ace_platform::workloads::Workload;

fn run(config: SystemConfig, workload: Workload, l: usize, v: usize, h: usize) -> IterationReport {
    SystemBuilder::new()
        .topology(l, v, h)
        .config(config)
        .workload(workload)
        .build()
        .expect("valid system")
        .run()
}

#[test]
fn every_config_completes_every_workload_on_16_npus() {
    for config in SystemConfig::ALL {
        for workload in Workload::paper_suite(16) {
            let name = workload.name().to_string();
            let r = run(config, workload, 4, 2, 2);
            assert!(r.total_time_us() > 0.0, "{config} {name}");
            assert!(r.total_compute_us() > 0.0, "{config} {name}");
            assert!(
                r.total_cycles() >= r.compute_cycles() + r.exposed_comm_cycles(),
                "{config} {name}: time accounting must be consistent"
            );
        }
    }
}

#[test]
fn ace_beats_every_baseline_on_every_workload() {
    // The paper's core claim (Fig. 11): ACE outperforms all baselines.
    for workload in Workload::paper_suite(16) {
        let name = workload.name().to_string();
        let ace = run(SystemConfig::Ace, workload.clone(), 4, 2, 2).total_time_us();
        for baseline in [
            SystemConfig::BaselineNoOverlap,
            SystemConfig::BaselineCommOpt,
            SystemConfig::BaselineCompOpt,
        ] {
            let b = run(baseline, workload.clone(), 4, 2, 2).total_time_us();
            assert!(
                ace <= b * 1.02,
                "{name}: ACE ({ace:.0} us) must not lose to {baseline} ({b:.0} us)"
            );
        }
    }
}

#[test]
fn ideal_lower_bounds_all_configs() {
    for workload in Workload::paper_suite(16) {
        let name = workload.name().to_string();
        let ideal = run(SystemConfig::Ideal, workload.clone(), 4, 2, 2).total_time_us();
        for config in SystemConfig::ALL {
            let t = run(config, workload.clone(), 4, 2, 2).total_time_us();
            assert!(
                t >= ideal * 0.98,
                "{name}: {config} ({t:.0} us) beat ideal ({ideal:.0} us)"
            );
        }
    }
}

#[test]
fn ace_compute_time_matches_comp_opt() {
    // ACE and BaselineCompOpt allocate the same compute resources
    // (772 GB/s); ACE's win must come from communication, with a small
    // compute edge from keeping all 80 SMs.
    let ace = run(SystemConfig::Ace, Workload::resnet50(), 4, 2, 2);
    let comp = run(SystemConfig::BaselineCompOpt, Workload::resnet50(), 4, 2, 2);
    let ratio = comp.total_compute_us() / ace.total_compute_us();
    assert!((1.0..1.1).contains(&ratio), "compute ratio {ratio}");
    assert!(ace.exposed_comm_us() <= comp.exposed_comm_us());
}

#[test]
fn comm_opt_compute_is_slower_than_comp_opt() {
    // Table VI arithmetic: 450 vs 772 GB/s of compute bandwidth on
    // memory-bound workloads => ~1.7x compute-time gap.
    let comm = run(SystemConfig::BaselineCommOpt, Workload::resnet50(), 4, 2, 2);
    let comp = run(SystemConfig::BaselineCompOpt, Workload::resnet50(), 4, 2, 2);
    let ratio = comm.total_compute_us() / comp.total_compute_us();
    assert!(
        (1.5..1.9).contains(&ratio),
        "CommOpt/CompOpt compute ratio {ratio} should be ~772/450"
    );
}

#[test]
fn exposed_communication_grows_with_system_size() {
    // Fig. 11a: more NPUs => more collective steps => more exposed comm.
    let small = run(SystemConfig::BaselineCompOpt, Workload::dlrm(16), 4, 2, 2);
    let large = run(SystemConfig::BaselineCompOpt, Workload::dlrm(64), 4, 4, 4);
    assert!(
        large.exposed_comm_us() > small.exposed_comm_us(),
        "exposed comm: 16 NPUs {:.0} us vs 64 NPUs {:.0} us",
        small.exposed_comm_us(),
        large.exposed_comm_us()
    );
}

#[test]
fn no_overlap_exposes_all_communication() {
    let r = run(
        SystemConfig::BaselineNoOverlap,
        Workload::resnet50(),
        4,
        2,
        2,
    );
    // With no overlap, the deferred batch wait must expose real time.
    assert!(r.exposed_comm_us() > 0.0);
}

#[test]
fn ace_utilization_reported_only_for_ace() {
    let ace = run(SystemConfig::Ace, Workload::resnet50(), 4, 2, 2);
    assert!(ace.ace_util_bwd().is_some());
    assert!(ace.ace_util_bwd().unwrap() > ace.ace_util_fwd().unwrap());
    let base = run(SystemConfig::BaselineCommOpt, Workload::resnet50(), 4, 2, 2);
    assert!(base.ace_util_bwd().is_none());
}

#[test]
fn timeline_series_are_populated_and_bounded() {
    let r = run(SystemConfig::Ace, Workload::resnet50(), 4, 2, 2);
    assert!(!r.compute_series().is_empty());
    assert!(!r.network_series().is_empty());
    for &u in r.compute_series() {
        assert!((0.0..=1.0 + 1e-9).contains(&u));
    }
    for &u in r.network_series() {
        assert!((0.0..=1.0 + 1e-9).contains(&u));
    }
}

#[test]
fn ace_memory_traffic_is_far_below_baseline() {
    let ace = run(SystemConfig::Ace, Workload::resnet50(), 4, 2, 2);
    let base = run(SystemConfig::BaselineCommOpt, Workload::resnet50(), 4, 2, 2);
    assert!(base.comm_mem_traffic_bytes() > 2 * ace.comm_mem_traffic_bytes());
}

#[test]
fn dlrm_optimized_loop_helps_ace_more_than_baseline() {
    let mk = |config, optimized| {
        SystemBuilder::new()
            .topology(4, 4, 4)
            .config(config)
            .workload(Workload::dlrm(64))
            .optimized_embedding(optimized)
            .build()
            .expect("valid system")
            .run()
            .total_time_us()
    };
    let ace_gain = mk(SystemConfig::Ace, false) / mk(SystemConfig::Ace, true);
    let base_gain =
        mk(SystemConfig::BaselineCompOpt, false) / mk(SystemConfig::BaselineCompOpt, true);
    assert!(
        ace_gain > base_gain,
        "ACE {ace_gain:.3} vs baseline {base_gain:.3}"
    );
    assert!(ace_gain > 1.0, "optimization must help ACE");
}
