//! Golden-trace regression tests.
//!
//! Smoke-sized versions of the Fig. 5 / Fig. 6 / Fig. 9a sweeps are run
//! end-to-end and their CSV/JSON reports diffed **byte-for-byte** against
//! checked-in files under `tests/golden/`. The files were captured from
//! the simulator before the topology abstraction landed, so these tests
//! prove that refactors of the network/collective/system layers do not
//! move the paper's numbers.
//!
//! To regenerate after an *intentional* simulation change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_traces
//! ```
//!
//! and review the diff like any other code change.

use std::path::PathBuf;

use ace_platform::net::TorusShape;
use ace_platform::sweep::{
    report, run_scenario, BaselineSpec, EngineFamily, EngineSpec, RunnerOptions, Scenario,
};

/// Smoke payload: big enough to exercise chunking/pipelining, small
/// enough for debug-mode test runs.
const PAYLOAD: u64 = 4 << 20;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Compares `actual` against the checked-in golden file, or rewrites the
/// file when `GOLDEN_REGEN=1`.
fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("GOLDEN_REGEN").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run GOLDEN_REGEN=1 cargo test --test golden_traces",
            path.display()
        )
    });
    if expected != actual {
        // Point at the first diverging line — a full dump of two CSVs is
        // unreadable in test output.
        for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
            assert_eq!(
                e,
                a,
                "golden {name} diverges at line {} (first diff shown)",
                i + 1
            );
        }
        assert_eq!(
            expected.lines().count(),
            actual.lines().count(),
            "golden {name}: line counts differ"
        );
        panic!("golden {name}: content differs only in trailing whitespace");
    }
}

fn torus(l: usize, v: usize, h: usize) -> TorusShape {
    TorusShape::new(l, v, h).expect("valid shape")
}

/// Fig. 5 (smoke): achieved bandwidth vs. communication memory
/// bandwidth, all three engine families on the 16-NPU torus.
fn fig05_smoke() -> Scenario {
    let mut sc = Scenario::collective("fig05-smoke");
    sc.topologies = vec![torus(4, 2, 2).into()];
    sc.engines = vec![
        EngineFamily::Ideal,
        EngineFamily::Baseline,
        EngineFamily::Ace,
    ];
    sc.payload_bytes = vec![PAYLOAD];
    sc.mem_gbps = vec![64.0, 128.0, 450.0];
    sc.comm_sms = vec![80];
    sc.baseline = Some(BaselineSpec::Engine(EngineSpec::Ideal));
    sc
}

/// Fig. 6 (smoke): achieved bandwidth vs. SMs loaned to communication.
fn fig06_smoke() -> Scenario {
    let mut sc = Scenario::collective("fig06-smoke");
    sc.topologies = vec![torus(4, 2, 2).into()];
    sc.engines = vec![EngineFamily::Ideal, EngineFamily::Baseline];
    sc.payload_bytes = vec![PAYLOAD];
    sc.mem_gbps = vec![900.0];
    sc.comm_sms = vec![1, 2, 6];
    sc.baseline = Some(BaselineSpec::Engine(EngineSpec::Ideal));
    sc
}

/// Fig. 9a (smoke): the ACE SRAM × FSM design space, normalized against
/// the paper's chosen 4 MB / 16 FSM point.
fn fig09a_smoke() -> Scenario {
    let mut sc = Scenario::collective("fig09a-smoke");
    sc.topologies = vec![torus(4, 2, 2).into()];
    sc.engines = vec![EngineFamily::Ace];
    sc.payload_bytes = vec![PAYLOAD];
    sc.mem_gbps = vec![128.0];
    sc.comm_sms = vec![6];
    sc.sram_mb = vec![1, 4];
    sc.fsms = vec![4, 16];
    sc.baseline = Some(BaselineSpec::Engine(EngineSpec::Ace {
        dma_mem_gbps: 128.0,
        sram_mb: 4,
        fsms: 16,
    }));
    sc
}

#[test]
fn fig05_smoke_csv_matches_golden() {
    let out = run_scenario(
        &fig05_smoke(),
        RunnerOptions {
            threads: 1,
            ..Default::default()
        },
    )
    .expect("valid scenario");
    check_golden("fig05_smoke.csv", &report::to_csv(&out));
}

#[test]
fn fig06_smoke_csv_matches_golden() {
    let out = run_scenario(
        &fig06_smoke(),
        RunnerOptions {
            threads: 1,
            ..Default::default()
        },
    )
    .expect("valid scenario");
    check_golden("fig06_smoke.csv", &report::to_csv(&out));
}

#[test]
fn fig09a_smoke_csv_matches_golden() {
    let out = run_scenario(
        &fig09a_smoke(),
        RunnerOptions {
            threads: 1,
            ..Default::default()
        },
    )
    .expect("valid scenario");
    check_golden("fig09a_smoke.csv", &report::to_csv(&out));
}

#[test]
fn fig09a_smoke_json_matches_golden() {
    let out = run_scenario(
        &fig09a_smoke(),
        RunnerOptions {
            threads: 1,
            ..Default::default()
        },
    )
    .expect("valid scenario");
    check_golden("fig09a_smoke.json", &report::to_json(&out));
}
