//! Design-space exploration of the ACE microarchitecture: sweep the SRAM
//! size and inspect the area/power cost model (paper Fig. 9a, Table IV).
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use ace_platform::collectives::{CollectiveOp, CollectivePlan};
use ace_platform::endpoint::{AceEndpoint, AceEndpointParams, CollectiveEngine};
use ace_platform::engine::{synthesis, AceConfig};
use ace_platform::mem::BusParams;
use ace_platform::net::{NetworkParams, TorusShape};
use ace_platform::simcore::SimTime;
use ace_platform::system::CollectiveExecutor;

fn main() {
    let shape = TorusShape::new(4, 2, 2).expect("a valid shape");
    let net = NetworkParams::paper_default();
    let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, shape);
    let weights = CollectiveExecutor::phase_weights(&plan, &net);
    println!("plan: {plan}\n");

    println!(
        "{:>6} | {:>12} | {:>10} | {:>10} | {:>10}",
        "SRAM", "64MB AR (us)", "area mm^2", "power W", "of NPU"
    );
    for sram_mb in [1u64, 2, 4, 8] {
        let config = AceConfig::with_dse_point(sram_mb, 16);
        let w = weights.clone();
        let mut ex = CollectiveExecutor::new(shape, net, move || {
            Box::new(AceEndpoint::new(AceEndpointParams {
                config,
                dma_mem_gbps: 128.0,
                bus: BusParams::paper_default(),
                phase_weights: w.clone(),
            })) as Box<dyn CollectiveEngine>
        });
        let h = ex.issue(CollectiveOp::AllReduce, 64 << 20, SimTime::ZERO);
        let done = ex.run_until_complete(h);
        let cost = synthesis::total(&config);
        let (area_frac, _) =
            synthesis::overhead(&config, synthesis::AcceleratorReference::tpu_class());
        println!(
            "{:>5}M | {:>12.0} | {:>10.2} | {:>10.2} | {:>9.2}%",
            sram_mb,
            done.cycles() as f64 / 1245.0, // 1245 MHz -> us
            cost.area_mm2(),
            cost.power_w(),
            area_frac * 100.0
        );
    }

    println!();
    println!("The paper settles on 4 MB / 16 FSMs: beyond that, performance gains");
    println!("are marginal while SRAM area (the dominant cost) doubles.");
}
