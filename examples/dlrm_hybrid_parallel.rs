//! Hybrid-parallel DLRM: model-parallel embedding tables exchanged with
//! all-to-all, data-parallel MLPs all-reduced — plus the Section VI-D
//! optimized training loop that ACE's reclaimed memory bandwidth enables.
//!
//! ```text
//! cargo run --release --example dlrm_hybrid_parallel
//! ```

use ace_platform::system::{SystemBuilder, SystemConfig};
use ace_platform::workloads::Workload;

fn main() {
    let nodes = 64;
    let workload = Workload::dlrm(nodes);
    println!("workload: {workload}");
    let emb = workload.embedding().expect("DLRM has an embedding stage");
    println!(
        "embedding: fwd all-to-all {:.1} MB/node, bwd {:.1} MB/node, lookup {}\n",
        emb.fwd_all_to_all_bytes as f64 / 1e6,
        emb.bwd_all_to_all_bytes as f64 / 1e6,
        emb.lookup
    );

    println!(
        "{:>10} {:>10} | {:>12} | {:>12} | {:>12}",
        "config", "loop", "compute us", "exposed us", "total us"
    );
    for config in [SystemConfig::BaselineCompOpt, SystemConfig::Ace] {
        for optimized in [false, true] {
            let report = SystemBuilder::new()
                .topology(4, 4, 4)
                .config(config)
                .workload(Workload::dlrm(nodes))
                .optimized_embedding(optimized)
                .build()
                .expect("a valid system")
                .run();
            println!(
                "{:>10} {:>10} | {:>12.0} | {:>12.0} | {:>12.0}",
                report.config(),
                if optimized { "optimized" } else { "default" },
                report.total_compute_us(),
                report.exposed_comm_us(),
                report.total_time_us()
            );
        }
    }

    println!();
    println!("The optimized loop pipelines the (memory-intensive) embedding");
    println!("lookup/update of the next/previous iteration behind the current");
    println!("iteration's compute on a 1-SM / 80 GB/s carve-out. Only ACE has");
    println!("the spare memory bandwidth to profit from it (paper Fig. 12).");
}
