//! Quickstart: simulate two ResNet-50 training iterations on a 16-NPU
//! platform under every endpoint configuration and compare iteration
//! times.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ace_platform::system::{SystemBuilder, SystemConfig};
use ace_platform::workloads::Workload;

fn main() {
    println!("ACE quickstart: ResNet-50, 2 iterations, 4x2x2 torus (16 NPUs)\n");
    println!(
        "{:>10} | {:>12} | {:>12} | {:>12} | {:>8}",
        "config", "compute us", "exposed us", "total us", "speedup"
    );

    let reports: Vec<_> = SystemConfig::ALL
        .iter()
        .map(|&config| {
            SystemBuilder::new()
                .topology(4, 2, 2)
                .config(config)
                .workload(Workload::resnet50())
                .build()
                .expect("a valid system")
                .run()
        })
        .collect();
    // Speedups are relative to BaselineCommOpt (index 1 in Table VI order).
    let reference = reports[1].total_time_us();
    for report in &reports {
        println!(
            "{:>10} | {:>12.0} | {:>12.0} | {:>12.0} | {:>7.2}x",
            report.config(),
            report.total_compute_us(),
            report.exposed_comm_us(),
            report.total_time_us(),
            reference / report.total_time_us()
        );
    }

    println!();
    println!("ACE frees all 80 SMs and 772 GB/s of HBM for training compute while");
    println!("driving the fabric from its own SRAM/ALU pipeline — it should land");
    println!("within a few percent of the Ideal endpoint.");
}
