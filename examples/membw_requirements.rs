//! The Section VI-A analysis as a library walkthrough: how much memory
//! bandwidth does each endpoint need to drive the fabric, and why?
//!
//! ```text
//! cargo run --release --example membw_requirements
//! ```

use ace_platform::collectives::{traffic, CollectiveOp, CollectivePlan};
use ace_platform::net::TorusShape;

fn main() {
    let payload: u64 = 64 << 20;

    for (l, v, h) in [(4, 2, 2), (4, 4, 4), (4, 8, 4)] {
        let shape = TorusShape::new(l, v, h).expect("a valid shape");
        let plan = CollectivePlan::for_op(CollectiveOp::AllReduce, shape);
        println!("== {} NPUs: {plan}", shape.nodes());

        // How much does each node send for a 64 MB gradient payload?
        let sent = plan.bytes_sent_per_node(payload);
        println!(
            "   per-node network bytes: {:.1} MB ({:.3}x the payload)",
            sent / 1e6,
            sent / payload as f64
        );

        // Endpoint memory traffic, baseline vs ACE.
        let base = traffic::baseline_traffic(&plan, payload);
        let ace = traffic::ace_traffic(payload);
        println!(
            "   baseline HBM traffic: {:.1} MB reads + {:.1} MB writes",
            base.reads / 1e6,
            base.writes / 1e6
        );
        println!(
            "   ACE      HBM traffic: {:.1} MB reads + {:.1} MB writes (DMA only)",
            ace.reads / 1e6,
            ace.writes / 1e6
        );

        // Memory bandwidth needed to sustain 300 GB/s of network injection.
        let base_bw = traffic::required_mem_bw_gbps(
            traffic::baseline_reads_per_network_byte(&plan, payload),
            300.0,
        );
        let ace_bw = traffic::required_mem_bw_gbps(
            traffic::ace_reads_per_network_byte(&plan, payload),
            300.0,
        );
        println!(
            "   to drive 300 GB/s: baseline {base_bw:.0} GB/s, ACE {ace_bw:.0} GB/s ({:.2}x less)\n",
            base_bw / ace_bw
        );
    }

    println!("Paper headline: ACE reduces the memory bandwidth required to drive");
    println!("the same network bandwidth by ~3.5x on average.");
}
